// Package predicate models runtime predicates and extracts them from
// execution traces.
//
// A predicate is a Boolean statement about one execution ("there is a
// data race between M1 and M2 on X", "method M returns an incorrect
// value", ...). Following the paper (§3.2 and Appendix A), AID separates
// instrumentation from predicate extraction: traces are collected once
// and predicates are evaluated offline, so new predicate designs need no
// re-instrumentation. Multiple dynamic executions of the same statement
// (loops, repeated calls) map to separate predicate instances.
//
// Every predicate carries the fault-injection recipe that repairs it
// (forces it to its value in successful executions), per Fig. 2 of the
// paper; package inject translates recipes into sim plans.
//
// The corpus is columnar: predicate IDs are interned to dense int32
// handles, and each predicate owns one occurrence bitmap over the
// execution rows plus a rank-aligned occurrence-window array. Corpus-
// wide queries (precision/recall counts, conjunction tests, the AC-DAG's
// counterfactual filter) run word-parallel over the bitmaps, and
// per-predicate counts are maintained incrementally on ingest, so
// statistical debugging over a streamed corpus is O(predicates-touched)
// per appended execution. String IDs survive only at the API edges:
// reports, trace files, DOT output, and the intervention scheduler's
// memo keys.
package predicate

import (
	"fmt"
	"sort"
	"strings"

	"aid/internal/bitvec"
	"aid/internal/trace"
)

// ID uniquely names a predicate within a corpus.
type ID string

// Handle is the dense corpus-local index of an interned predicate ID.
// Handles are stable for the life of a corpus except across
// DropUnobserved, which compacts them.
type Handle int32

// NoHandle marks the absence of a handle.
const NoHandle Handle = -1

// Kind classifies predicates by the runtime condition they capture.
type Kind int

// Predicate kinds. KindFailure is the distinguished predicate F that
// holds exactly in failed executions.
const (
	KindFailure Kind = iota
	KindDataRace
	KindMethodFails
	KindTooSlow
	KindTooFast
	KindWrongReturn
	KindOrderViolation
	KindAtomicityViolation
	KindCompound
	// KindStartsLate captures §4's Case 2: a method begins later than in
	// any successful run. Lateness is inherited from the environment
	// (the caller started late, a predecessor ran long), so there is no
	// local repair — the predicate is diagnostic only and never enters
	// the AC-DAG's intervenable set.
	KindStartsLate
)

var kindNames = map[Kind]string{
	KindFailure:            "failure",
	KindDataRace:           "data-race",
	KindMethodFails:        "method-fails",
	KindTooSlow:            "runs-too-slow",
	KindTooFast:            "runs-too-fast",
	KindWrongReturn:        "wrong-return",
	KindOrderViolation:     "order-violation",
	KindAtomicityViolation: "atomicity-violation",
	KindCompound:           "compound",
	KindStartsLate:         "starts-late",
}

// String returns the kind's name.
func (k Kind) String() string { return kindNames[k] }

// Durational reports whether the predicate describes an ongoing
// condition spanning its whole window (a duration anomaly) rather than
// an instantaneous event. The AC-DAG orders a durational predicate
// against an instantaneous one by the duration's start — the ongoing
// condition enables events that occur within or after its window (§4's
// pairwise precedence policies).
func (k Kind) Durational() bool { return k == KindTooSlow || k == KindTooFast }

// StampPolicy selects the representative timestamp of an occurrence for
// temporal-precedence comparisons (§4: some predicate kinds order by
// start time, others by end time).
type StampPolicy int

const (
	// ByStart orders occurrences by window start (e.g. "starts later
	// than expected": the enclosing span's lateness causes the callee's).
	ByStart StampPolicy = iota
	// ByEnd orders occurrences by window end (e.g. "runs too slow": the
	// callee's slowness causes the caller's, and the callee ends first).
	ByEnd
)

// InterventionKind names a fault-injection mechanism from Fig. 2.
type InterventionKind int

// Intervention kinds; IvNone marks predicates that cannot be repaired.
const (
	IvNone InterventionKind = iota
	// IvLockMethods serializes the named methods with one shared lock
	// (repairs data races and atomicity violations).
	IvLockMethods
	// IvCatchException wraps the method in a try-catch (repairs
	// "method fails").
	IvCatchException
	// IvPrematureReturn returns the correct value immediately (repairs
	// "runs too slow").
	IvPrematureReturn
	// IvDelayReturn delays the method's return (repairs "runs too fast").
	IvDelayReturn
	// IvOverrideReturn forces the correct return value (repairs
	// "returns incorrect value").
	IvOverrideReturn
	// IvEnforceOrder makes the second method wait for the first
	// (repairs order violations).
	IvEnforceOrder
	// IvGroup composes several interventions (compound predicates).
	IvGroup
)

// Intervention is the declarative repair recipe for a predicate.
type Intervention struct {
	Kind    InterventionKind
	Methods []string
	// Value / Void configure return-value interventions.
	Value int64
	Void  bool
	// Delay configures delay interventions (ticks).
	Delay int64
	// Safe reports whether the intervention has no undesirable side
	// effects (§3.3): return-value and exception interventions are safe
	// only on side-effect-free methods; timing and locking interventions
	// are always safe.
	Safe bool
	// Parts holds the component interventions of an IvGroup.
	Parts []Intervention
}

// Predicate is one Boolean runtime condition plus the metadata AID
// needs: its timestamp policy and its repair recipe.
type Predicate struct {
	ID       ID
	Kind     Kind
	Methods  []string
	Instance int
	Object   trace.ObjectID
	// Members lists component predicate IDs for compound predicates.
	Members []ID
	Stamp   StampPolicy
	Repair  Intervention
	// Desc is a human-readable statement of the condition.
	Desc string
}

// String returns the predicate's description, falling back to its ID.
func (p *Predicate) String() string {
	if p.Desc != "" {
		return p.Desc
	}
	return string(p.ID)
}

// Occurrence is one manifestation of a predicate in one execution: a
// time window within the run, attributed to a thread when the
// predicate concerns a single thread's span (Thread = -1 for
// multi-thread or global predicates). Thread attribution lets the
// AC-DAG order two durational predicates by nesting only when they
// belong to the same thread.
type Occurrence struct {
	Start  trace.Time     `json:"start"`
	End    trace.Time     `json:"end"`
	Thread trace.ThreadID `json:"thread"`
}

// NoThread marks occurrences not attributable to a single thread.
const NoThread trace.ThreadID = -1

// StampTime returns the representative timestamp under the policy.
func (o Occurrence) StampTime(p StampPolicy) trace.Time {
	if p == ByEnd {
		return o.End
	}
	return o.Start
}

// column is the per-predicate store: the occurrence bitmap over the
// execution rows plus the occurrence windows, rank-aligned with the
// set bits (occs[k] belongs to the k-th set row of rows).
type column struct {
	rows bitvec.Vec
	occs []Occurrence
	// last is the highest row with a bit set (-1 when empty); ingest is
	// append-only per column, so last makes same-row merge O(1).
	last int32
	// failCnt counts set rows that are failed executions (maintained
	// incrementally — the numerator of precision and recall).
	failCnt int32
}

// ExecLog is a read-only view of one execution row of a corpus: which
// predicates occurred in that execution and when. It is a 16-byte
// handle, cheap to copy; the data lives in the corpus's columns.
type ExecLog struct {
	c   *Corpus
	row int32
}

// Row returns the view's execution-row index.
func (l ExecLog) Row() int { return int(l.row) }

// ExecID returns the execution's identifier.
func (l ExecLog) ExecID() string { return l.c.execIDs[l.row] }

// Failed reports whether the execution failed.
func (l ExecLog) Failed() bool { return l.c.failedRows.Has(int(l.row)) }

// Has reports whether the predicate occurred in this execution.
func (l ExecLog) Has(id ID) bool {
	h, ok := l.c.byID[id]
	return ok && l.c.cols[h].rows.Has(int(l.row))
}

// HasHandle is Has over an interned handle — no string lookup.
func (l ExecLog) HasHandle(h Handle) bool {
	return l.c.cols[h].rows.Has(int(l.row))
}

// Occ returns the predicate's occurrence window in this execution.
func (l ExecLog) Occ(id ID) (Occurrence, bool) {
	h, ok := l.c.byID[id]
	if !ok {
		return Occurrence{}, false
	}
	return l.c.OccAt(int(l.row), h)
}

// OccMap materializes the row as an ID-keyed occurrence map — the
// row-oriented edge representation used by the on-disk codec and tests.
func (l ExecLog) OccMap() map[ID]Occurrence {
	out := make(map[ID]Occurrence)
	row := int(l.row)
	for h := range l.c.cols {
		col := &l.c.cols[h]
		if col.rows.Has(row) {
			occ, _ := l.c.OccAt(row, Handle(h))
			out[l.c.Preds[h].ID] = occ
		}
	}
	return out
}

// Corpus is a set of predicates plus their occurrence columns over a
// set of executions — the input to statistical debugging and the
// AC-DAG. Rows (executions) are append-only; columns are written in
// nondecreasing row order (the natural order of both batch extraction
// and streaming ingest).
type Corpus struct {
	Preds []Predicate // indexed by Handle
	byID  map[ID]Handle
	cols  []column

	execIDs    []string
	failedRows bitvec.Vec
	// failOrd[row] is the row's index among failed rows (-1 for
	// successes) — the alignment the AC-DAG's occurrence matrices use.
	failOrd []int32
	nFail   int

	// partFail and partSucc are the cached partition views returned by
	// FailedLogs/SuccessLogs, maintained on ingest (a row's outcome
	// never changes after AddRow).
	partFail []ExecLog
	partSucc []ExecLog

	// sealed guards rows shared with an extraction template (see
	// Extractor): writes below it would mutate another corpus's columns.
	sealed int

	// effectPruned counts predicates removed by DropPure (the
	// effect-guided pruning pass); see EffectPruned.
	effectPruned int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{byID: make(map[ID]Handle)}
}

// AddPred registers a predicate and returns its handle; re-adding an
// existing ID returns the existing handle.
func (c *Corpus) AddPred(p Predicate) Handle {
	if h, ok := c.byID[p.ID]; ok {
		return h
	}
	h := Handle(len(c.Preds))
	c.byID[p.ID] = h
	c.Preds = append(c.Preds, p)
	c.cols = append(c.cols, column{last: -1})
	return h
}

// Has reports whether a predicate with the given ID is registered.
// Extractors use it to skip re-building predicate metadata (notably
// description strings) for IDs they have already emitted.
func (c *Corpus) Has(id ID) bool {
	_, ok := c.byID[id]
	return ok
}

// HandleOf interns an ID: it returns the predicate's dense handle.
func (c *Corpus) HandleOf(id ID) (Handle, bool) {
	h, ok := c.byID[id]
	return h, ok
}

// Pred returns the predicate with the given ID, or nil.
func (c *Corpus) Pred(id ID) *Predicate {
	h, ok := c.byID[id]
	if !ok {
		return nil
	}
	return &c.Preds[h]
}

// PredAt returns the predicate behind a handle.
func (c *Corpus) PredAt(h Handle) *Predicate { return &c.Preds[h] }

// IDs returns all predicate IDs in registration order.
func (c *Corpus) IDs() []ID {
	out := make([]ID, len(c.Preds))
	for i := range c.Preds {
		out[i] = c.Preds[i].ID
	}
	return out
}

// NumPreds returns the number of registered predicates.
func (c *Corpus) NumPreds() int { return len(c.Preds) }

// NumLogs returns the number of execution rows.
func (c *Corpus) NumLogs() int { return len(c.execIDs) }

// FailedCount returns the number of failed execution rows.
func (c *Corpus) FailedCount() int { return c.nFail }

// Log returns the view of execution row i.
func (c *Corpus) Log(i int) ExecLog { return ExecLog{c: c, row: int32(i)} }

// AddRow appends one execution row (streaming ingest) and returns its
// index. Occurrences are then recorded with SetOcc.
func (c *Corpus) AddRow(execID string, failed bool) int {
	row := len(c.execIDs)
	c.execIDs = append(c.execIDs, execID)
	view := ExecLog{c: c, row: int32(row)}
	if failed {
		c.failedRows.Set(row)
		c.failOrd = append(c.failOrd, int32(c.nFail))
		c.nFail++
		c.partFail = append(c.partFail, view)
	} else {
		c.failOrd = append(c.failOrd, -1)
		c.partSucc = append(c.partSucc, view)
	}
	return row
}

// SetOcc records the predicate's occurrence window in the given row,
// updating the maintained counts. Writes to one column must arrive in
// nondecreasing row order (re-writing the current row merges by
// overwrite, matching map semantics); earlier rows are immutable.
func (c *Corpus) SetOcc(row int, h Handle, occ Occurrence) {
	if row < c.sealed {
		panic(fmt.Sprintf("predicate: write to sealed baseline row %d", row))
	}
	col := &c.cols[h]
	if int32(row) == col.last {
		col.occs[len(col.occs)-1] = occ
		return
	}
	if int32(row) < col.last {
		panic(fmt.Sprintf("predicate: out-of-order column write: row %d after %d", row, col.last))
	}
	col.rows.Set(row)
	col.occs = append(col.occs, occ)
	col.last = int32(row)
	if c.failedRows.Has(row) {
		col.failCnt++
	}
}

// AddLog appends one execution row from its row-oriented form — the
// streaming ingest entry used by the codec, tests, and offline corpora.
// Every occurrence's predicate must already be registered.
func (c *Corpus) AddLog(execID string, failed bool, occ map[ID]Occurrence) int {
	row := c.AddRow(execID, failed)
	for id, o := range occ {
		h, ok := c.byID[id]
		if !ok {
			panic(fmt.Sprintf("predicate: AddLog references unregistered predicate %q", id))
		}
		c.SetOcc(row, h, o)
	}
	return row
}

// OccAt returns the predicate's occurrence window in the given row.
func (c *Corpus) OccAt(row int, h Handle) (Occurrence, bool) {
	col := &c.cols[h]
	if int32(row) == col.last {
		return col.occs[len(col.occs)-1], true
	}
	if !col.rows.Has(row) {
		return Occurrence{}, false
	}
	return col.occs[col.rows.Rank(row)], true
}

// ForEachOcc calls fn for every (row, occurrence) of the predicate in
// ascending row order.
func (c *Corpus) ForEachOcc(h Handle, fn func(row int, occ Occurrence)) {
	col := &c.cols[h]
	k := 0
	col.rows.ForEach(func(row int) {
		fn(row, col.occs[k])
		k++
	})
}

// Rows returns the predicate's occurrence bitmap over execution rows.
// The returned vector is the corpus's own storage: read-only.
func (c *Corpus) Rows(h Handle) bitvec.Vec { return c.cols[h].rows }

// FailedMask returns the bitmap of failed execution rows (read-only).
func (c *Corpus) FailedMask() bitvec.Vec { return c.failedRows }

// FailOrd returns row's index among the failed rows, or -1.
func (c *Corpus) FailOrd(row int) int { return int(c.failOrd[row]) }

// CountsAt returns the maintained (#rows where the predicate occurred,
// #failed rows where it occurred) — O(1), no scan.
func (c *Corpus) CountsAt(h Handle) (occurred, occurredInFailed int) {
	col := &c.cols[h]
	return len(col.occs), int(col.failCnt)
}

// Counts returns (#executions where id occurred, #failed executions
// where id occurred, #failed executions). Counts are maintained on
// ingest; this is O(1).
func (c *Corpus) Counts(id ID) (occurred, occurredInFailed, failed int) {
	h, ok := c.byID[id]
	if !ok {
		return 0, 0, c.nFail
	}
	occurred, occurredInFailed = c.CountsAt(h)
	return occurred, occurredInFailed, c.nFail
}

// FailedOccurrences returns the predicate's occurrence windows at the
// failed rows, aligned with the failed-row order (length = #failed rows
// where it occurred; for counterfactual predicates that is every failed
// row). The result is freshly allocated.
func (c *Corpus) FailedOccurrences(h Handle) []Occurrence {
	col := &c.cols[h]
	out := make([]Occurrence, 0, col.failCnt)
	k := 0
	col.rows.ForEach(func(row int) {
		if c.failedRows.Has(row) {
			out = append(out, col.occs[k])
		}
		k++
	})
	return out
}

// FailedLogs returns the cached view slice of failed execution rows.
// The slice is maintained on ingest and shared: callers must not
// mutate it or assume it stable across a later AddRow.
func (c *Corpus) FailedLogs() []ExecLog { return c.partFail }

// SuccessLogs returns the cached view slice of successful execution
// rows, under the same sharing contract as FailedLogs.
func (c *Corpus) SuccessLogs() []ExecLog { return c.partSucc }

// DropUnobserved removes predicates that never occur in any row,
// compacting handles. Returns the number removed.
func (c *Corpus) DropUnobserved() int {
	keepPreds := make([]Predicate, 0, len(c.Preds))
	keepCols := make([]column, 0, len(c.cols))
	removed := 0
	for i := range c.Preds {
		if len(c.cols[i].occs) > 0 {
			keepPreds = append(keepPreds, c.Preds[i])
			keepCols = append(keepCols, c.cols[i])
		} else {
			removed++
		}
	}
	c.Preds = keepPreds
	c.cols = keepCols
	c.byID = make(map[ID]Handle, len(keepPreds))
	for i := range c.Preds {
		c.byID[c.Preds[i].ID] = Handle(i)
	}
	return removed
}

// DropPure removes predicates anchored entirely in provably-pure
// methods — effect-guided pruning: such methods perform no traced
// accesses and raise no exceptions, so their per-call predicates
// cannot host a root cause (see internal/effects). Predicates with no
// method anchor (the failure predicate F, races and order violations
// spanning mixed methods keep their own anchors) are never dropped.
// Handles compact like DropUnobserved. A nil oracle is a no-op.
// Returns the number removed, also accumulated into EffectPruned.
func (c *Corpus) DropPure(pure func(method string) bool) int {
	if pure == nil {
		return 0
	}
	keepPreds := make([]Predicate, 0, len(c.Preds))
	keepCols := make([]column, 0, len(c.cols))
	removed := 0
	for i := range c.Preds {
		if allMethodsPure(&c.Preds[i], pure) {
			removed++
			continue
		}
		keepPreds = append(keepPreds, c.Preds[i])
		keepCols = append(keepCols, c.cols[i])
	}
	if removed == 0 {
		return 0
	}
	c.Preds = keepPreds
	c.cols = keepCols
	c.byID = make(map[ID]Handle, len(keepPreds))
	for i := range c.Preds {
		c.byID[c.Preds[i].ID] = Handle(i)
	}
	c.effectPruned += removed
	return removed
}

// allMethodsPure reports whether p anchors to at least one method and
// every anchored method is pure.
func allMethodsPure(p *Predicate, pure func(method string) bool) bool {
	if len(p.Methods) == 0 {
		return false
	}
	for _, m := range p.Methods {
		if !pure(m) {
			return false
		}
	}
	return true
}

// EffectPruned returns the total number of predicates DropPure removed
// from this corpus.
func (c *Corpus) EffectPruned() int { return c.effectPruned }

// deriveSealed returns a corpus that shares this one's rows and columns
// as an immutable prefix, sized to take extraRows appended rows — the
// zero-copy round template of predicate.Extractor. Shared occurrence
// arrays are full-capped so any append reallocates (copy-on-write); the
// per-column row bitmaps are cloned (a few words each, since appended
// row bits can land in a shared trailing word). Writes into the shared
// prefix panic via the sealed guard.
func (c *Corpus) deriveSealed(extraRows int) *Corpus {
	n := c.NumLogs()
	d := &Corpus{
		Preds:      append([]Predicate(nil), c.Preds...),
		byID:       make(map[ID]Handle, len(c.byID)+8),
		cols:       make([]column, len(c.cols)),
		execIDs:    c.execIDs[:n:n],
		failedRows: c.failedRows.CloneCap(n + extraRows),
		failOrd:    c.failOrd[:n:n],
		nFail:      c.nFail,
		sealed:     n,
	}
	for id, h := range c.byID {
		d.byID[id] = h
	}
	for i := range c.cols {
		b := &c.cols[i]
		d.cols[i] = column{
			rows:    b.rows.Clone(),
			occs:    b.occs[:len(b.occs):len(b.occs)],
			last:    b.last,
			failCnt: b.failCnt,
		}
	}
	d.partFail = make([]ExecLog, 0, c.nFail+extraRows)
	d.partSucc = make([]ExecLog, 0, n-c.nFail)
	for row := 0; row < n; row++ {
		v := ExecLog{c: d, row: int32(row)}
		if d.failedRows.Has(row) {
			d.partFail = append(d.partFail, v)
		} else {
			d.partSucc = append(d.partSucc, v)
		}
	}
	return d
}

// FailureID is the ID of the distinguished failure predicate F.
const FailureID ID = "FAILURE"

// FailurePredicate builds the predicate F indicating the failure itself.
func FailurePredicate() Predicate {
	return Predicate{
		ID:    FailureID,
		Kind:  KindFailure,
		Stamp: ByEnd,
		Desc:  "the execution fails",
	}
}

// CompoundAnd builds the conjunction of existing predicates: it occurs
// in an execution iff all members occur; its window spans the members'
// windows and its stamp is the latest member stamp (a conjunction
// completes when its last conjunct holds). Its repair composes the
// member repairs. Members must be registered in the corpus.
func (c *Corpus) CompoundAnd(members ...ID) (Predicate, error) {
	if len(members) < 2 {
		return Predicate{}, fmt.Errorf("predicate: compound needs >= 2 members, got %d", len(members))
	}
	sorted := append([]ID(nil), members...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	parts := make([]string, len(sorted))
	var repair Intervention
	repair.Kind = IvGroup
	repair.Safe = true
	var descs []string
	for i, m := range sorted {
		p := c.Pred(m)
		if p == nil {
			return Predicate{}, fmt.Errorf("predicate: compound member %q not in corpus", m)
		}
		parts[i] = string(m)
		repair.Parts = append(repair.Parts, p.Repair)
		if !p.Repair.Safe {
			repair.Safe = false
		}
		descs = append(descs, p.String())
	}
	id := ID("and(" + strings.Join(parts, ",") + ")")
	pred := Predicate{
		ID:      id,
		Kind:    KindCompound,
		Members: sorted,
		Stamp:   ByEnd,
		Repair:  repair,
		Desc:    "(" + strings.Join(descs, ") AND (") + ")",
	}
	return pred, nil
}

// MaterializeCompound registers the compound predicate and fills its
// occurrences in every row where all members occur.
func (c *Corpus) MaterializeCompound(p Predicate) {
	c.MaterializeCompoundFrom(p, 0)
}

// MaterializeCompoundFrom is MaterializeCompound restricted to rows
// [from, NumLogs()). Use it when the earlier rows are shared with a
// cached extraction template (predicate.Extractor) and must stay
// unwritten. The membership test is a word-parallel AND of the member
// bitmaps; windows are merged in one pass per member.
func (c *Corpus) MaterializeCompoundFrom(p Predicate, from int) {
	h := c.AddPred(p)
	if len(p.Members) == 0 {
		return
	}
	mh := make([]Handle, len(p.Members))
	for i, m := range p.Members {
		hm, ok := c.byID[m]
		if !ok {
			return // unknown member: the conjunction occurs nowhere
		}
		mh[i] = hm
	}
	and := c.cols[mh[0]].rows.Clone()
	for _, hm := range mh[1:] {
		o := c.cols[hm].rows
		for w := range and {
			if w < len(o) {
				and[w] &= o[w]
			} else {
				and[w] = 0
			}
		}
	}
	var rows []int
	and.ForEach(func(row int) {
		if row >= from {
			rows = append(rows, row)
		}
	})
	if len(rows) == 0 {
		return
	}
	windows := make([]Occurrence, len(rows))
	for k, hm := range mh {
		idx := 0
		c.ForEachOcc(hm, func(row int, occ Occurrence) {
			for idx < len(rows) && rows[idx] < row {
				idx++
			}
			if idx >= len(rows) || rows[idx] != row {
				return
			}
			if k == 0 {
				windows[idx] = occ
				return
			}
			w := &windows[idx]
			if occ.Start < w.Start {
				w.Start = occ.Start
			}
			if occ.End > w.End {
				w.End = occ.End
			}
		})
	}
	for i, row := range rows {
		c.SetOcc(row, h, windows[i])
	}
}

// GroupKey returns the canonical membership key of a predicate group:
// IDs sorted and NUL-joined, insensitive to order and duplicates-free
// only if the input is. It is the cache key shared by the intervention
// scheduler (core) and the group-testing oracle cache (grouptest) —
// one implementation so the two layers can never diverge. Singleton
// groups (the bulk of confirmation rounds) skip the sort and join.
func GroupKey(ids []ID) string {
	if len(ids) == 1 {
		return string(ids[0])
	}
	sorted := append([]ID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := 0
	for _, id := range sorted {
		n += len(id) + 1
	}
	var b strings.Builder
	b.Grow(n)
	for i, id := range sorted {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(string(id))
	}
	return b.String()
}
