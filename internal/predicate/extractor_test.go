package predicate

import (
	"reflect"
	"testing"

	"aid/internal/trace"
)

// TestExtractorMatchesOneShot asserts the cached path's contract: for
// success-only baselines and failed replays, Extractor.Extract returns
// exactly what a one-shot Extract over the concatenated set would.
func TestExtractorMatchesOneShot(t *testing.T) {
	set := benchSet(30, 24)
	var baselines, replays []trace.Execution
	for _, e := range set.Executions {
		if e.Failed() {
			replays = append(replays, e)
		} else {
			baselines = append(baselines, e)
		}
	}
	cfg := Config{DurationMargin: 4}

	merged := &trace.Set{}
	merged.Executions = append(merged.Executions, baselines...)
	merged.Executions = append(merged.Executions, replays...)
	want := Extract(merged, cfg)

	x, err := NewExtractor(baselines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ { // rounds must not contaminate each other
		got := x.Extract(replays)
		if !reflect.DeepEqual(want.Preds, got.Preds) {
			t.Fatalf("round %d: predicate table differs from one-shot extraction", round)
		}
		if len(want.Logs) != len(got.Logs) {
			t.Fatalf("round %d: %d logs, want %d", round, len(got.Logs), len(want.Logs))
		}
		for i := range want.Logs {
			if want.Logs[i].ExecID != got.Logs[i].ExecID ||
				want.Logs[i].Failed != got.Logs[i].Failed ||
				!reflect.DeepEqual(want.Logs[i].Occ, got.Logs[i].Occ) {
				t.Fatalf("round %d: log %d (%s) differs from one-shot extraction",
					round, i, want.Logs[i].ExecID)
			}
		}
	}
}

// TestExtractorSubsetReplays checks a replay set different from the
// baseline-building corpus (each round replays under a new plan, so the
// traces differ round to round).
func TestExtractorSubsetReplays(t *testing.T) {
	set := benchSet(30, 24)
	var baselines, replays []trace.Execution
	for _, e := range set.Executions {
		if e.Failed() {
			replays = append(replays, e)
		} else {
			baselines = append(baselines, e)
		}
	}
	cfg := Config{DurationMargin: 4}
	x, err := NewExtractor(baselines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut <= len(replays); cut++ {
		sub := replays[:cut]
		merged := &trace.Set{}
		merged.Executions = append(merged.Executions, baselines...)
		merged.Executions = append(merged.Executions, sub...)
		want := Extract(merged, cfg)
		got := x.Extract(sub)
		if !reflect.DeepEqual(want.Preds, got.Preds) {
			t.Fatalf("cut %d: predicate table differs from one-shot extraction", cut)
		}
		for i := range want.Logs {
			if !reflect.DeepEqual(want.Logs[i].Occ, got.Logs[i].Occ) {
				t.Fatalf("cut %d: log %d differs", cut, i)
			}
		}
	}
}
