package predicate

import (
	"reflect"
	"testing"

	"aid/internal/trace"
)

// TestExtractorMatchesOneShot asserts the cached path's contract: for
// success-only baselines and failed replays, Extractor.Extract returns
// exactly what a one-shot Extract over the concatenated set would.
func TestExtractorMatchesOneShot(t *testing.T) {
	set := benchSet(30, 24)
	var baselines, replays []trace.Execution
	for _, e := range set.Executions {
		if e.Failed() {
			replays = append(replays, e)
		} else {
			baselines = append(baselines, e)
		}
	}
	cfg := Config{DurationMargin: 4}

	merged := &trace.Set{}
	merged.Executions = append(merged.Executions, baselines...)
	merged.Executions = append(merged.Executions, replays...)
	want := Extract(merged, cfg)

	x, err := NewExtractor(baselines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ { // rounds must not contaminate each other
		got := x.Extract(replays)
		if !reflect.DeepEqual(want.Preds, got.Preds) {
			t.Fatalf("round %d: predicate table differs from one-shot extraction", round)
		}
		if want.NumLogs() != got.NumLogs() {
			t.Fatalf("round %d: %d logs, want %d", round, got.NumLogs(), want.NumLogs())
		}
		for i := 0; i < want.NumLogs(); i++ {
			if want.Log(i).ExecID() != got.Log(i).ExecID() ||
				want.Log(i).Failed() != got.Log(i).Failed() ||
				!reflect.DeepEqual(want.Log(i).OccMap(), got.Log(i).OccMap()) {
				t.Fatalf("round %d: log %d (%s) differs from one-shot extraction",
					round, i, want.Log(i).ExecID())
			}
		}
	}
}

// TestExtractorSubsetReplays checks a replay set different from the
// baseline-building corpus (each round replays under a new plan, so the
// traces differ round to round).
func TestExtractorSubsetReplays(t *testing.T) {
	set := benchSet(30, 24)
	var baselines, replays []trace.Execution
	for _, e := range set.Executions {
		if e.Failed() {
			replays = append(replays, e)
		} else {
			baselines = append(baselines, e)
		}
	}
	cfg := Config{DurationMargin: 4}
	x, err := NewExtractor(baselines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut <= len(replays); cut++ {
		sub := replays[:cut]
		merged := &trace.Set{}
		merged.Executions = append(merged.Executions, baselines...)
		merged.Executions = append(merged.Executions, sub...)
		want := Extract(merged, cfg)
		got := x.Extract(sub)
		if !reflect.DeepEqual(want.Preds, got.Preds) {
			t.Fatalf("cut %d: predicate table differs from one-shot extraction", cut)
		}
		for i := 0; i < want.NumLogs(); i++ {
			if !reflect.DeepEqual(want.Log(i).OccMap(), got.Log(i).OccMap()) {
				t.Fatalf("cut %d: log %d differs", cut, i)
			}
		}
	}
}
