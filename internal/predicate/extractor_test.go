package predicate

import (
	"reflect"
	"testing"

	"aid/internal/trace"
)

// TestExtractorMatchesOneShot asserts the cached path's contract: for
// success-only baselines and failed replays, Extractor.Extract returns
// exactly what a one-shot Extract over the concatenated set would.
func TestExtractorMatchesOneShot(t *testing.T) {
	set := benchSet(30, 24)
	var baselines, replays []trace.Execution
	for _, e := range set.Executions {
		if e.Failed() {
			replays = append(replays, e)
		} else {
			baselines = append(baselines, e)
		}
	}
	cfg := Config{DurationMargin: 4}

	merged := &trace.Set{}
	merged.Executions = append(merged.Executions, baselines...)
	merged.Executions = append(merged.Executions, replays...)
	want := Extract(merged, cfg)

	x, err := NewExtractor(baselines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ { // rounds must not contaminate each other
		got := x.Extract(replays)
		if !reflect.DeepEqual(want.Preds, got.Preds) {
			t.Fatalf("round %d: predicate table differs from one-shot extraction", round)
		}
		if want.NumLogs() != got.NumLogs() {
			t.Fatalf("round %d: %d logs, want %d", round, got.NumLogs(), want.NumLogs())
		}
		for i := 0; i < want.NumLogs(); i++ {
			if want.Log(i).ExecID() != got.Log(i).ExecID() ||
				want.Log(i).Failed() != got.Log(i).Failed() ||
				!reflect.DeepEqual(want.Log(i).OccMap(), got.Log(i).OccMap()) {
				t.Fatalf("round %d: log %d (%s) differs from one-shot extraction",
					round, i, want.Log(i).ExecID())
			}
		}
	}
}

// TestExtractorSubsetReplays checks a replay set different from the
// baseline-building corpus (each round replays under a new plan, so the
// traces differ round to round).
func TestExtractorSubsetReplays(t *testing.T) {
	set := benchSet(30, 24)
	var baselines, replays []trace.Execution
	for _, e := range set.Executions {
		if e.Failed() {
			replays = append(replays, e)
		} else {
			baselines = append(baselines, e)
		}
	}
	cfg := Config{DurationMargin: 4}
	x, err := NewExtractor(baselines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut <= len(replays); cut++ {
		sub := replays[:cut]
		merged := &trace.Set{}
		merged.Executions = append(merged.Executions, baselines...)
		merged.Executions = append(merged.Executions, sub...)
		want := Extract(merged, cfg)
		got := x.Extract(sub)
		if !reflect.DeepEqual(want.Preds, got.Preds) {
			t.Fatalf("cut %d: predicate table differs from one-shot extraction", cut)
		}
		for i := 0; i < want.NumLogs(); i++ {
			if !reflect.DeepEqual(want.Log(i).OccMap(), got.Log(i).OccMap()) {
				t.Fatalf("cut %d: log %d differs", cut, i)
			}
		}
	}
}

// TestExtractReplaysMatchesExtract pins the overlay path's contract:
// across rounds with varying replay subsets (exercising the epoch
// reset), ExtractReplays must answer occurrence queries identically to
// the fresh-derive Extract for every predicate Extract retains —
// extra zero-occurrence predicates in the overlay are the only
// permitted difference.
func TestExtractReplaysMatchesExtract(t *testing.T) {
	set := benchSet(30, 24)
	var baselines, replays []trace.Execution
	for _, e := range set.Executions {
		if e.Failed() {
			replays = append(replays, e)
		} else {
			baselines = append(baselines, e)
		}
	}
	cfg := Config{DurationMargin: 4}
	x, err := NewExtractor(baselines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewExtractor(baselines, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Vary the replay subset round to round so the reset has real work:
	// shrink, grow, full, single.
	cuts := []int{len(replays), 3, len(replays) / 2, len(replays), 1, len(replays)}
	for round, cut := range cuts {
		sub := replays[:cut]
		want := ref.Extract(sub)
		got := x.ExtractReplays(sub)
		if got.NumLogs() != want.NumLogs() {
			t.Fatalf("round %d: %d logs, want %d", round, got.NumLogs(), want.NumLogs())
		}
		for i := 0; i < want.NumLogs(); i++ {
			wl, gl := want.Log(i), got.Log(i)
			if wl.ExecID() != gl.ExecID() || wl.Failed() != gl.Failed() {
				t.Fatalf("round %d: log %d identity differs", round, i)
			}
		}
		// Every retained predicate of the compacted corpus must answer
		// identically in the overlay.
		for _, p := range want.Preds {
			gh, ok := got.HandleOf(p.ID)
			if !ok {
				t.Fatalf("round %d: overlay is missing predicate %q", round, p.ID)
			}
			wo, wf, _ := want.Counts(p.ID)
			goc, gif := got.CountsAt(gh)
			if wo != goc || wf != gif {
				t.Fatalf("round %d: %q counts (%d,%d), want (%d,%d)", round, p.ID, goc, gif, wo, wf)
			}
			for i := 0; i < want.NumLogs(); i++ {
				wocc, wok := want.Log(i).Occ(p.ID)
				gocc, gok := got.OccAt(i, gh)
				if wok != gok || wocc != gocc {
					t.Fatalf("round %d: %q occurrence at row %d = (%v,%v), want (%v,%v)",
						round, p.ID, i, gocc, gok, wocc, wok)
				}
			}
		}
		// And every extra overlay predicate must be unobserved — a
		// leftover from an earlier round with its occurrences cleared.
		for h := range got.Preds {
			id := got.Preds[h].ID
			if _, ok := want.HandleOf(id); ok {
				continue
			}
			if occ, inF := got.CountsAt(Handle(h)); occ != 0 || inF != 0 {
				t.Fatalf("round %d: overlay-only predicate %q has occurrences (%d,%d)", round, id, occ, inF)
			}
		}
	}
}

// TestExtractReplaysSteadyStateAllocs pins the point of the overlay:
// warm rounds with the same replay shape must allocate near zero —
// the budget covers only the compound-materialization clone and map
// internals, not per-row or per-predicate work.
func TestExtractReplaysSteadyStateAllocs(t *testing.T) {
	set := benchSet(30, 24)
	var baselines, replays []trace.Execution
	for _, e := range set.Executions {
		if e.Failed() {
			replays = append(replays, e)
		} else {
			baselines = append(baselines, e)
		}
	}
	x, err := NewExtractor(baselines, Config{DurationMargin: 4})
	if err != nil {
		t.Fatal(err)
	}
	x.ExtractReplays(replays) // warm
	avg := testing.AllocsPerRun(20, func() {
		x.ExtractReplays(replays)
	})
	if avg > 5 {
		t.Fatalf("warm ExtractReplays allocates %.1f times per round, want <= 5", avg)
	}
}
