package effects

import (
	"reflect"
	"testing"

	"aid/internal/casestudy"
	"aid/internal/sim"
)

// The dynamic soundness oracle for the static analysis. The claim
// behind AID's Safe flag (§3.3: return-value and exception
// interventions are safe only on side-effect-free methods) is that
// skipping or absorbing a side-effect-free function cannot change the
// program's observable shared state. This test checks the derived
// classification against the runtime: every function the analysis
// calls side-effect-free is executed in isolation, with and without
// forced-return / absorbed-exception injections, and the final
// globals/arrays snapshot must be identical. A teeth check on
// known-impure functions confirms the oracle can actually fail.

var forcedValue = int64(7)

var soundnessPlans = []struct {
	name string
	plan func(fn string) sim.Plan
}{
	{"force-return-void", func(fn string) sim.Plan { return sim.Plan{fn: {ForceReturnVoid: true}} }},
	{"force-return", func(fn string) sim.Plan { return sim.Plan{fn: {ForceReturn: &forcedValue}} }},
	{"catch-exceptions", func(fn string) sim.Plan { return sim.Plan{fn: {CatchExceptions: true}} }},
}

var soundnessSeeds = []int64{1, 7, 42}

// isolated builds a single-threaded harness program whose entry is fn.
// Function bodies are shared read-only with the original; shared state
// is deep-copied so each run starts from the program's declared state.
func isolated(orig *sim.Program, fn string) *sim.Program {
	p := &sim.Program{
		Name:    orig.Name + "/" + fn,
		Entry:   fn,
		Funcs:   orig.Funcs,
		Globals: make(map[string]int64, len(orig.Globals)),
		Arrays:  make(map[string][]int64, len(orig.Arrays)),
	}
	for k, v := range orig.Globals {
		p.Globals[k] = v
	}
	for k, v := range orig.Arrays {
		p.Arrays[k] = append([]int64(nil), v...)
	}
	return p
}

// finalState runs p once and returns the shared-state snapshot. The
// step budget is small: an isolated WaitUntil can never be signalled,
// and a bounded hang still yields a valid snapshot.
func finalState(t *testing.T, p *sim.Program, seed int64, plan sim.Plan) sim.FinalState {
	t.Helper()
	var fs sim.FinalState
	if _, err := sim.Run(p, seed, sim.RunOptions{Plan: plan, MaxSteps: 5000, Final: &fs}); err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
	return fs
}

func soundnessPrograms() []*sim.Program {
	progs := make([]*sim.Program, 0, 8)
	for _, s := range casestudy.All() {
		progs = append(progs, s.Program)
	}
	return append(progs, quickstartReplica(), PruningDemo(4, 6))
}

// TestPuritySoundness replays every analysis-side-effect-free function
// under forced-return and absorbed-exception injections and asserts
// the observable shared state is identical to the uninstrumented run.
func TestPuritySoundness(t *testing.T) {
	tested := 0
	for _, prog := range soundnessPrograms() {
		a := Analyze(prog)
		for _, fn := range prog.FuncNames() {
			if !a.SideEffectFree(fn) {
				continue
			}
			tested++
			iso := isolated(prog, fn)
			for _, seed := range soundnessSeeds {
				base := finalState(t, iso, seed, nil)
				for _, pl := range soundnessPlans {
					got := finalState(t, iso, seed, pl.plan(fn))
					if !reflect.DeepEqual(base, got) {
						t.Errorf("%s/%s seed %d %s: shared state diverged\nbaseline: %+v\ninjected: %+v",
							prog.Name, fn, seed, pl.name, base, got)
					}
				}
			}
		}
	}
	if tested == 0 {
		t.Fatal("no side-effect-free functions exercised; the oracle is vacuous")
	}
	t.Logf("verified %d side-effect-free functions against the runtime", tested)
}

// TestPuritySoundnessTeeth: the oracle must detect impurity. Forcing a
// return on a function the analysis calls impure changes the final
// state, so a wrong side-effect-free classification could not pass
// TestPuritySoundness.
func TestPuritySoundnessTeeth(t *testing.T) {
	cases := []struct {
		prog *sim.Program
		fn   string
	}{
		{quickstartReplica(), "Increment"},
		{PruningDemo(4, 6), "WriterA"},
	}
	for _, tc := range cases {
		a := Analyze(tc.prog)
		if a.SideEffectFree(tc.fn) {
			t.Fatalf("%s/%s: expected impure, analysis says side-effect-free", tc.prog.Name, tc.fn)
		}
		iso := isolated(tc.prog, tc.fn)
		base := finalState(t, iso, 1, nil)
		skipped := finalState(t, iso, 1, sim.Plan{tc.fn: {ForceReturnVoid: true}})
		if reflect.DeepEqual(base, skipped) {
			t.Errorf("%s/%s: skipping an impure function left shared state unchanged; the oracle has no teeth",
				tc.prog.Name, tc.fn)
		}
	}
}
