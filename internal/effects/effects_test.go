package effects

import (
	"testing"

	"aid/internal/casestudy"
	"aid/internal/sim"
)

// analyzeOne runs the analysis over a single function body (plus any
// extra functions) and returns its result.
func analyzeOne(t *testing.T, body []sim.Op, extra map[string][]sim.Op) FuncEffects {
	t.Helper()
	p := sim.NewProgram("t", "F")
	p.AddFunc("F", body...)
	for name, ops := range extra {
		p.AddFunc(name, ops...)
	}
	a := Analyze(p)
	fe, ok := a.Funcs["F"]
	if !ok {
		t.Fatalf("no analysis result for F")
	}
	return fe
}

// TestPhase1OpTable pins the Phase-1 bitfield of every Op kind.
func TestPhase1OpTable(t *testing.T) {
	cases := []struct {
		name  string
		body  []sim.Op
		extra map[string][]sim.Op
		want  Effect
	}{
		{name: "Nop", body: []sim.Op{sim.Nop{}}, want: 0},
		{name: "Assign", body: []sim.Op{sim.Assign{Dst: "x", Src: sim.Lit(1)}}, want: LocalWrite},
		{name: "Assign/param-read", body: []sim.Op{sim.Assign{Dst: "x", Src: sim.V("y")}}, want: LocalWrite | ParamRead},
		{name: "Arith/add", body: []sim.Op{sim.Arith{Dst: "x", A: sim.Lit(1), Op: sim.OpAdd, B: sim.Lit(2)}}, want: LocalWrite},
		{name: "Arith/div-literal", body: []sim.Op{sim.Arith{Dst: "x", A: sim.Lit(4), Op: sim.OpDiv, B: sim.Lit(2)}}, want: LocalWrite},
		{name: "Arith/div-zero-literal", body: []sim.Op{sim.Arith{Dst: "x", A: sim.Lit(4), Op: sim.OpDiv, B: sim.Lit(0)}}, want: LocalWrite | RaiseThrow},
		{
			name: "Arith/div-var",
			body: []sim.Op{
				sim.Assign{Dst: "d", Src: sim.Lit(2)},
				sim.Arith{Dst: "x", A: sim.Lit(4), Op: sim.OpDiv, B: sim.V("d")},
			},
			want: LocalWrite | RaiseThrow,
		},
		{
			name: "Arith/mod-var",
			body: []sim.Op{
				sim.Assign{Dst: "d", Src: sim.Lit(2)},
				sim.Arith{Dst: "x", A: sim.Lit(4), Op: sim.OpMod, B: sim.V("d")},
			},
			want: LocalWrite | RaiseThrow,
		},
		{name: "ReadGlobal", body: []sim.Op{sim.ReadGlobal{Var: "g", Dst: "x"}}, want: GlobalRead | LocalWrite},
		{name: "WriteGlobal", body: []sim.Op{sim.WriteGlobal{Var: "g", Src: sim.Lit(1)}}, want: GlobalWrite},
		{name: "ArrayRead", body: []sim.Op{sim.ArrayRead{Arr: "a", Index: sim.Lit(0), Dst: "x"}}, want: ArrayRead | RaiseThrow | LocalWrite},
		{name: "ArrayWrite", body: []sim.Op{sim.ArrayWrite{Arr: "a", Index: sim.Lit(0), Src: sim.Lit(1)}}, want: ArrayWrite | RaiseThrow},
		{name: "ArrayLen", body: []sim.Op{sim.ArrayLen{Arr: "a", Dst: "x"}}, want: ArrayRead | LocalWrite},
		{name: "ArrayResize", body: []sim.Op{sim.ArrayResize{Arr: "a", Len: sim.Lit(3)}}, want: ArrayWrite | RaiseThrow},
		{name: "Lock", body: []sim.Op{sim.Lock{Mu: "m"}}, want: LockAcquire},
		{name: "Unlock", body: []sim.Op{sim.Unlock{Mu: "m"}}, want: LockRelease | RaiseThrow},
		{name: "Sleep", body: []sim.Op{sim.Sleep{Ticks: sim.Lit(3)}}, want: SleepTick},
		{name: "WaitUntil", body: []sim.Op{sim.WaitUntil{Var: "g", Val: sim.Lit(1)}}, want: WaitGlobal | GlobalRead},
		{
			name:  "Call",
			body:  []sim.Op{sim.Call{Fn: "Callee", Dst: "x"}},
			extra: map[string][]sim.Op{"Callee": {sim.ReturnVoid{}}},
			want:  LocalWrite,
		},
		{name: "Call/unknown", body: []sim.Op{sim.Call{Fn: "Missing", Dst: "x"}}, want: UnknownCall | LocalWrite},
		{name: "Return", body: []sim.Op{sim.Return{Val: sim.Lit(1)}}, want: 0},
		{name: "ReturnVoid", body: []sim.Op{sim.ReturnVoid{}}, want: 0},
		{name: "Throw", body: []sim.Op{sim.Throw{Kind: "Boom"}}, want: RaiseThrow},
		{
			name: "Try",
			body: []sim.Op{sim.Try{
				Body:      []sim.Op{sim.Throw{Kind: "Boom"}},
				CatchKind: "*",
				Handler:   []sim.Op{sim.Nop{}},
			}},
			// Conservative: the body's throw is kept even under a
			// catch-all handler.
			want: RaiseThrow,
		},
		{
			name: "If",
			body: []sim.Op{
				sim.Assign{Dst: "c", Src: sim.Lit(1)},
				sim.If{Cond: sim.Cond{A: sim.V("c"), Op: sim.EQ, B: sim.Lit(1)},
					Then: []sim.Op{sim.Nop{}}, Else: []sim.Op{sim.Nop{}}},
			},
			want: LocalWrite,
		},
		{
			name: "While",
			body: []sim.Op{
				sim.Assign{Dst: "i", Src: sim.Lit(0)},
				sim.While{Cond: sim.Cond{A: sim.V("i"), Op: sim.LT, B: sim.Lit(3)}, Body: []sim.Op{
					sim.Arith{Dst: "i", A: sim.V("i"), Op: sim.OpAdd, B: sim.Lit(1)},
				}},
			},
			want: LocalWrite,
		},
		{
			name:  "Spawn",
			body:  []sim.Op{sim.Spawn{Fn: "Callee", Dst: "x"}},
			extra: map[string][]sim.Op{"Callee": {sim.ReturnVoid{}}},
			want:  SpawnThread | LocalWrite,
		},
		{
			name: "Join",
			body: []sim.Op{
				sim.Assign{Dst: "x", Src: sim.Lit(0)},
				sim.Join{Thread: sim.V("x")},
			},
			want: JoinThread | LocalWrite,
		},
		{name: "Random", body: []sim.Op{sim.Random{Dst: "x", N: sim.Lit(10)}}, want: ReadRandom | LocalWrite},
		{name: "ReadClock", body: []sim.Op{sim.ReadClock{Dst: "x"}}, want: ReadClock | LocalWrite},
		{name: "Fail", body: []sim.Op{sim.Fail{Sig: "boom"}}, want: FailStop},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fe := analyzeOne(t, tc.body, tc.extra)
			if fe.Local != tc.want {
				t.Errorf("Local effects = %v, want %v", fe.Local, tc.want)
			}
		})
	}
}

// TestParamReadFlow pins the flow-sensitive defined-locals tracking:
// reads before definition are ParamRead, reads after are not, branch
// definitions merge by intersection, and loop/try definitions are
// discarded conservatively.
func TestParamReadFlow(t *testing.T) {
	cases := []struct {
		name      string
		body      []sim.Op
		paramRead bool
	}{
		{
			name: "defined-then-read",
			body: []sim.Op{
				sim.Assign{Dst: "x", Src: sim.Lit(1)},
				sim.Return{Val: sim.V("x")},
			},
			paramRead: false,
		},
		{
			name:      "read-before-define",
			body:      []sim.Op{sim.Return{Val: sim.V("x")}},
			paramRead: true,
		},
		{
			name: "defined-on-both-branches",
			body: []sim.Op{
				sim.Assign{Dst: "c", Src: sim.Lit(0)},
				sim.If{Cond: sim.Cond{A: sim.V("c"), Op: sim.EQ, B: sim.Lit(0)},
					Then: []sim.Op{sim.Assign{Dst: "x", Src: sim.Lit(1)}},
					Else: []sim.Op{sim.Assign{Dst: "x", Src: sim.Lit(2)}}},
				sim.Return{Val: sim.V("x")},
			},
			paramRead: false,
		},
		{
			name: "defined-on-one-branch",
			body: []sim.Op{
				sim.Assign{Dst: "c", Src: sim.Lit(0)},
				sim.If{Cond: sim.Cond{A: sim.V("c"), Op: sim.EQ, B: sim.Lit(0)},
					Then: []sim.Op{sim.Assign{Dst: "x", Src: sim.Lit(1)}}},
				sim.Return{Val: sim.V("x")},
			},
			paramRead: true,
		},
		{
			name: "defined-in-loop-read-after",
			body: []sim.Op{
				sim.Assign{Dst: "c", Src: sim.Lit(0)},
				sim.While{Cond: sim.Cond{A: sim.V("c"), Op: sim.LT, B: sim.Lit(1)}, Body: []sim.Op{
					sim.Assign{Dst: "x", Src: sim.Lit(1)},
					sim.Arith{Dst: "c", A: sim.V("c"), Op: sim.OpAdd, B: sim.Lit(1)},
				}},
				sim.Return{Val: sim.V("x")},
			},
			paramRead: true, // zero-iteration loops define nothing
		},
		{
			name: "defined-in-try-read-after",
			body: []sim.Op{
				sim.Try{Body: []sim.Op{sim.Assign{Dst: "x", Src: sim.Lit(1)}}, CatchKind: "*"},
				sim.Return{Val: sim.V("x")},
			},
			paramRead: true, // the body may stop anywhere
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fe := analyzeOne(t, tc.body, nil)
			if got := fe.Local&ParamRead != 0; got != tc.paramRead {
				t.Errorf("ParamRead = %v, want %v (effects %v)", got, tc.paramRead, fe.Local)
			}
		})
	}
}

// TestFixedPointRecursion: Phase-2 propagation converges on recursive
// and mutually-recursive call graphs and propagates effects through
// them.
func TestFixedPointRecursion(t *testing.T) {
	p := sim.NewProgram("rec", "Main")
	// Pure mutual recursion: Even <-> Odd touch only locals.
	p.AddFunc("Even",
		sim.Assign{Dst: "n", Src: sim.Lit(2)},
		sim.Call{Fn: "Odd", Dst: "r"},
	)
	p.AddFunc("Odd",
		sim.Call{Fn: "Even", Dst: "r"},
	)
	// Impure mutual recursion: Ping <-> Pong, Pong writes a global.
	p.AddFunc("Ping", sim.Call{Fn: "Pong", Dst: ""})
	p.AddFunc("Pong",
		sim.WriteGlobal{Var: "g", Src: sim.Lit(1)},
		sim.Call{Fn: "Ping", Dst: ""},
	)
	// Self recursion, pure.
	p.AddFunc("Self", sim.Call{Fn: "Self", Dst: "r"})
	// A chain reaching the impure cycle.
	p.AddFunc("Chain", sim.Call{Fn: "Ping", Dst: ""})
	p.AddFunc("Main", sim.Call{Fn: "Chain", Dst: ""})

	a := Analyze(p)
	if lvl := a.Level("Even"); lvl > LevelParamPure {
		t.Errorf("Even level %v, want <= param-pure", lvl)
	}
	if lvl := a.Level("Odd"); lvl > LevelParamPure {
		t.Errorf("Odd level %v, want <= param-pure", lvl)
	}
	if lvl := a.Level("Self"); lvl > LevelParamPure {
		t.Errorf("Self level %v, want <= param-pure", lvl)
	}
	for _, fn := range []string{"Ping", "Pong", "Chain", "Main"} {
		if lvl := a.Level(fn); lvl != LevelImpure {
			t.Errorf("%s level %v, want impure (global write reaches it transitively)", fn, lvl)
		}
		if a.Funcs[fn].Total&GlobalWrite == 0 {
			t.Errorf("%s total effects %v missing global-write", fn, a.Funcs[fn].Total)
		}
	}
}

// TestLevels pins one representative function per purity level.
func TestLevels(t *testing.T) {
	p := sim.NewProgram("levels", "Main")
	p.AddFunc("Pure",
		sim.Assign{Dst: "x", Src: sim.Lit(1)},
		sim.Return{Val: sim.V("x")},
	)
	p.AddFunc("ParamPure",
		sim.Arith{Dst: "y", A: sim.V("arg"), Op: sim.OpMul, B: sim.Lit(2)},
		sim.Return{Val: sim.V("y")},
	)
	p.AddFunc("Observer",
		sim.ReadGlobal{Var: "g", Dst: "x"},
		sim.Return{Val: sim.V("x")},
	)
	p.AddFunc("ObserverRandom",
		sim.Random{Dst: "x", N: sim.Lit(10)},
		sim.Return{Val: sim.V("x")},
	)
	p.AddFunc("ObserverClock",
		sim.ReadClock{Dst: "x"},
		sim.Return{Val: sim.V("x")},
	)
	p.AddFunc("Control",
		sim.Sleep{Ticks: sim.Lit(2)},
		sim.Throw{Kind: "Boom"},
	)
	p.AddFunc("Impure", sim.WriteGlobal{Var: "g", Src: sim.Lit(1)})
	p.AddFunc("Main", sim.Nop{})

	a := Analyze(p)
	want := map[string]Level{
		"Pure":           LevelPure,
		"ParamPure":      LevelParamPure,
		"Observer":       LevelObserver,
		"ObserverRandom": LevelObserver,
		"ObserverClock":  LevelObserver,
		"Control":        LevelControl,
		"Impure":         LevelImpure,
	}
	for fn, lvl := range want {
		if got := a.Level(fn); got != lvl {
			t.Errorf("%s level %v, want %v", fn, got, lvl)
		}
	}
	// The derived classifications downstream consumers read.
	for fn, free := range map[string]bool{
		"Pure": true, "ParamPure": true, "Observer": true,
		"ObserverRandom": true, "Control": true, "Impure": false,
	} {
		if got := a.SideEffectFree(fn); got != free {
			t.Errorf("SideEffectFree(%s) = %v, want %v", fn, got, free)
		}
	}
	for fn, pr := range map[string]bool{
		"Pure": true, "ParamPure": true, "Observer": false,
		"Control": false, "Impure": false,
	} {
		if got := a.Prunable(fn); got != pr {
			t.Errorf("Prunable(%s) = %v, want %v", fn, got, pr)
		}
	}
	// Unknown functions are never safe.
	if a.SideEffectFree("NoSuch") || a.Prunable("NoSuch") {
		t.Error("unknown function classified safe")
	}
}

// TestContradictions: hand SideEffectFree annotations refuted by the
// analysis are flagged; conservative hand annotations (false on a
// derived-free function) are not.
func TestContradictions(t *testing.T) {
	p := sim.NewProgram("lint", "Main")
	p.AddFunc("BadAnnotation", sim.WriteGlobal{Var: "g", Src: sim.Lit(1)}).SideEffectFree = true
	p.AddFunc("GoodAnnotation",
		sim.ReadGlobal{Var: "g", Dst: "x"},
		sim.Return{Val: sim.V("x")},
	).SideEffectFree = true
	p.AddFunc("Conservative", // derived free, annotated false: fine
		sim.Return{Val: sim.Lit(1)},
	)
	p.AddFunc("Main", sim.Nop{})

	got := Analyze(p).Contradictions()
	if len(got) != 1 || got[0].Func != "BadAnnotation" {
		t.Fatalf("Contradictions() = %v, want exactly BadAnnotation", got)
	}
	if got[0].Effects&GlobalWrite == 0 {
		t.Errorf("contradiction effects %v missing global-write", got[0].Effects)
	}
	if got[0].String() == "" {
		t.Error("empty contradiction rendering")
	}
}

// quickstartReplica rebuilds examples/quickstart's buggy program (the
// example hand-sets SideEffectFree on ReadTotal) so the annotation
// lint covers it without importing a main package.
func quickstartReplica() *sim.Program {
	p := sim.NewProgram("quickstart", "Main")
	p.Globals["counter"] = 0
	p.AddFunc("Increment",
		sim.ReadGlobal{Var: "counter", Dst: "c"},
		sim.Nop{}, sim.Nop{},
		sim.Arith{Dst: "c", A: sim.V("c"), Op: sim.OpAdd, B: sim.Lit(1)},
		sim.WriteGlobal{Var: "counter", Src: sim.V("c")},
	)
	p.AddFunc("ReadTotal",
		sim.ReadGlobal{Var: "counter", Dst: "v"},
		sim.Return{Val: sim.V("v")},
	).SideEffectFree = true
	p.AddFunc("Main",
		sim.Spawn{Fn: "Increment", Dst: "a"},
		sim.Spawn{Fn: "Increment", Dst: "b"},
		sim.Join{Thread: sim.V("a")},
		sim.Join{Thread: sim.V("b")},
		sim.Call{Fn: "ReadTotal", Dst: "total"},
		sim.If{Cond: sim.Cond{A: sim.V("total"), Op: sim.NE, B: sim.Lit(2)},
			Then: []sim.Op{sim.Throw{Kind: "LostUpdate"}}},
	)
	return p
}

// TestAnnotationLint runs the contradiction checker over every
// program that ships hand SideEffectFree annotations — the six case
// studies, the quickstart example's program, and the pruning demo —
// and requires zero contradictions: every hand annotation in the tree
// is consistent with the derived effects.
func TestAnnotationLint(t *testing.T) {
	progs := make([]*sim.Program, 0, 8)
	for _, s := range casestudy.All() {
		progs = append(progs, s.Program)
	}
	progs = append(progs, quickstartReplica(), PruningDemo(4, 6))
	for _, p := range progs {
		a := Analyze(p)
		for _, c := range a.Contradictions() {
			t.Errorf("%s: %s", p.Name, c)
		}
	}
}

// TestStudyPurityProfile pins why the case studies see zero pruning:
// every annotated-safe study function observes shared or environment
// state (level observer or control), so none reaches the pruning bar.
// The demo program, by contrast, has prunable functions.
func TestStudyPurityProfile(t *testing.T) {
	for _, s := range casestudy.All() {
		a := Analyze(s.Program)
		for fn := range s.Program.Funcs {
			if a.Prunable(fn) {
				t.Errorf("%s: %s is prunable (level %v); the studies' zero-pruning pin no longer holds",
					s.Name, fn, a.Level(fn))
			}
		}
	}
	a := Analyze(PruningDemo(4, 6))
	prunable := 0
	for fn := range a.Funcs {
		if a.Prunable(fn) {
			prunable++
		}
	}
	// 4 checksums (pure) + 6 relays (param-pure).
	if prunable != 10 {
		t.Errorf("demo prunable functions = %d, want 10", prunable)
	}
}

// TestEffectString covers the bitfield rendering.
func TestEffectString(t *testing.T) {
	if got := Effect(0).String(); got != "none" {
		t.Errorf("Effect(0) = %q", got)
	}
	if got := (GlobalWrite | RaiseThrow).String(); got != "global-write|throw" {
		t.Errorf("rendering = %q", got)
	}
	for _, lvl := range []Level{LevelPure, LevelParamPure, LevelObserver, LevelControl, LevelImpure} {
		if lvl.String() == "" {
			t.Errorf("empty Level rendering for %d", int(lvl))
		}
	}
}
