package effects

import (
	"fmt"

	"aid/internal/sim"
)

// PruningDemo builds the effect-pruning demonstration workload: a
// lost-update race whose failure path flows through a chain of
// param-pure relay functions, padded with pure checksum helpers.
//
// Two writers race an unprotected read-modify-write on "counter"; the
// main thread then reads the (possibly corrupted) total into a local
// and pipes it through `relays` deterministic relay functions before
// checking it. In failing runs every relay returns a wrong value, so
// each contributes a fully-discriminative wrong-return predicate that
// statistical debugging keeps and the AC-DAG places on the path to F —
// noise the intervention phase must spend rounds refuting. The
// checksum helpers compute from nothing and vary only in duration
// (scheduling noise), padding the corpus with prunable timing
// predicates.
//
// Effect analysis classifies the relays LevelParamPure and the
// checksums LevelPure, so effect-guided pruning drops their predicates
// before ranking, shrinking the corpus and the AC-DAG while the root
// cause — the race on "counter" — keeps its own predicates. The
// workload backs the pruning tests, the EXPERIMENTS.md PR 8 record,
// and cmd/benchjson's effects cells.
func PruningDemo(checksums, relays int) *sim.Program {
	p := sim.NewProgram("effects-demo", "Main")
	p.Globals["counter"] = 0

	// The race window: unprotected read-modify-write, widened with Nops
	// so schedules interleave it often enough to collect failures fast.
	p.AddFunc("WriterA",
		sim.ReadGlobal{Var: "counter", Dst: "a"},
		sim.Nop{}, sim.Nop{},
		sim.Arith{Dst: "a", A: sim.V("a"), Op: sim.OpAdd, B: sim.Lit(1)},
		sim.WriteGlobal{Var: "counter", Src: sim.V("a")},
	)
	p.AddFunc("WriterB",
		sim.ReadGlobal{Var: "counter", Dst: "b"},
		sim.Nop{}, sim.Nop{},
		sim.Arith{Dst: "b", A: sim.V("b"), Op: sim.OpAdd, B: sim.Lit(1)},
		sim.WriteGlobal{Var: "counter", Src: sim.V("b")},
	)

	main := []sim.Op{
		sim.Spawn{Fn: "WriterA", Dst: "ta"},
		sim.Spawn{Fn: "WriterB", Dst: "tb"},
	}
	// Pure checksum helpers run while the writers race: their durations
	// vary with preemption, seeding the corpus with timing predicates
	// that carry no causal information.
	for i := 0; i < checksums; i++ {
		name := fmt.Sprintf("Checksum%d", i)
		p.AddFunc(name,
			sim.Assign{Dst: "acc", Src: sim.Lit(int64(i))},
			sim.Assign{Dst: "i", Src: sim.Lit(0)},
			sim.While{Cond: sim.Cond{A: sim.V("i"), Op: sim.LT, B: sim.Lit(6)}, Body: []sim.Op{
				sim.Arith{Dst: "acc", A: sim.V("acc"), Op: sim.OpAdd, B: sim.V("i")},
				sim.Arith{Dst: "i", A: sim.V("i"), Op: sim.OpAdd, B: sim.Lit(1)},
			}},
			sim.Return{Val: sim.V("acc")},
		).SideEffectFree = true
		main = append(main, sim.Call{Fn: name, Dst: "ck"})
	}
	main = append(main,
		sim.Join{Thread: sim.V("ta")},
		sim.Join{Thread: sim.V("tb")},
		sim.ReadGlobal{Var: "counter", Dst: "c"},
	)
	// Param-pure relays of the (possibly corrupted) total: in failing
	// runs each returns a wrong value, a fully-discriminative
	// wrong-return predicate on the path to F.
	for i := 0; i < relays; i++ {
		name := fmt.Sprintf("Relay%d", i)
		p.AddFunc(name,
			sim.Arith{Dst: "r", A: sim.V("c"), Op: sim.OpMul, B: sim.Lit(int64(i + 2))},
			sim.Return{Val: sim.V("r")},
		).SideEffectFree = true
		main = append(main, sim.Call{Fn: name, Dst: fmt.Sprintf("r%d", i)})
	}
	main = append(main,
		sim.If{Cond: sim.Cond{A: sim.V("c"), Op: sim.NE, B: sim.Lit(2)},
			Then: []sim.Op{sim.Fail{Sig: "lost-update"}}},
	)
	p.AddFunc("Main", main...)
	return p
}
