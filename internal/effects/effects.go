// Package effects implements a static side-effect analysis over
// simulated programs (internal/sim): per-function effect bitfields,
// transitive purity levels, derived SideEffectFree annotations, and an
// annotation-contradiction checker.
//
// The analysis has two phases. Phase 1 walks each function's Op tree
// into an intraprocedural effect bitfield (Effect): shared-state
// writes, lock traffic, thread management, environment reads, control
// effects. Phase 2 runs a fixed-point propagation over the Call/Spawn
// graph — monotone ORs over a finite lattice, so recursion (including
// mutual recursion) converges — resolving each function's transitive
// effect set and collapsing it into one of five purity levels.
//
// Two questions drive the design, both from the paper's §3.3 validity
// rules and the pipeline's pruning needs:
//
//   - SideEffectFree: may this function's return value be altered or
//     its exceptions absorbed without corrupting shared program state?
//     True when the transitive effects contain no shared-state write
//     (level <= LevelControl). This derives the hand annotation
//     sim.Func.SideEffectFree and lets the checker flag hand
//     annotations the analysis contradicts.
//
//   - Prunable: can a predicate anchored entirely in this function
//     host a root cause? Functions at or below LevelParamPure perform
//     no traced accesses, acquire no locks, and raise no exceptions —
//     their per-call predicates are pure scheduling noise (or, at
//     LevelParamPure, deterministic relays of caller-local state whose
//     upstream traced accesses keep their own predicates), so
//     extraction can drop them before ranking without losing the
//     causal path. See DESIGN.md "Effect analysis" for the soundness
//     argument.
//
// The simulator's calling convention shapes two conventions here.
// Locals are per-thread and shared across call frames, so a read of a
// local the function did not first define is a read of caller state
// (ParamRead), and every local write lands in the caller's namespace —
// the return-value channel — which is why LocalWrite never disqualifies
// purity. And Random/ReadClock consume scheduler environment without
// touching program state, so they read like environment observations
// rather than effects: altering the return of a function that rolled
// dice cannot corrupt anything the dice did not already vary.
package effects

import (
	"fmt"
	"sort"
	"strings"

	"aid/internal/sim"
)

// Effect is a bitfield of a function's side effects. The zero value
// means "provably effect-free".
type Effect uint32

const (
	// GlobalRead reads a shared variable (a traced access).
	GlobalRead Effect = 1 << iota
	// GlobalWrite writes a shared variable (a traced access).
	GlobalWrite
	// ArrayRead reads a shared array element or length (traced).
	ArrayRead
	// ArrayWrite writes or resizes a shared array (traced).
	ArrayWrite
	// LocalWrite writes a thread-local. Locals are thread-shared across
	// call frames, so this is the calling convention's parameter/return
	// channel; it never disqualifies purity.
	LocalWrite
	// ParamRead reads a thread-local the function did not first define:
	// an inherited caller value, the convention's parameter read.
	ParamRead
	// RaiseThrow may raise an exception observable by the caller
	// (explicit Throw, array bounds, division by a non-literal divisor,
	// unlocking an unheld mutex).
	RaiseThrow
	// LockAcquire acquires a mutex.
	LockAcquire
	// LockRelease releases a mutex.
	LockRelease
	// SleepTick blocks for scheduler ticks.
	SleepTick
	// WaitGlobal blocks until a shared variable takes a value.
	WaitGlobal
	// SpawnThread starts a thread.
	SpawnThread
	// JoinThread joins a thread.
	JoinThread
	// ReadRandom consumes the seeded random stream (an environment
	// read: it varies the result, not shared state).
	ReadRandom
	// ReadClock reads the scheduler clock (an environment read).
	ReadClock
	// FailStop terminates the run with a failure signature.
	FailStop
	// UnknownCall calls a function the program does not define; all
	// bets are off.
	UnknownCall
)

// Effect-class masks, the three questions Level asks in order.
const (
	// WriteEffects are shared-state mutations: any of these makes a
	// function impure (never SideEffectFree). Lock traffic and thread
	// management count — forcing a return can skip an Unlock or a Join
	// another thread observes — as does FailStop and the unanalyzable
	// UnknownCall.
	WriteEffects = GlobalWrite | ArrayWrite | LockAcquire | LockRelease |
		SpawnThread | JoinThread | FailStop | UnknownCall
	// ControlEffects raise exceptions or alter timing without touching
	// shared state; they cap a function at LevelControl.
	ControlEffects = RaiseThrow | SleepTick | WaitGlobal
	// EnvReads observe state the function does not own — shared
	// variables, arrays, the random stream, the clock — capping a
	// function at LevelObserver.
	EnvReads = GlobalRead | ArrayRead | ReadRandom | ReadClock
)

var effectNames = []struct {
	bit  Effect
	name string
}{
	{GlobalRead, "global-read"},
	{GlobalWrite, "global-write"},
	{ArrayRead, "array-read"},
	{ArrayWrite, "array-write"},
	{LocalWrite, "local-write"},
	{ParamRead, "param-read"},
	{RaiseThrow, "throw"},
	{LockAcquire, "lock"},
	{LockRelease, "unlock"},
	{SleepTick, "sleep"},
	{WaitGlobal, "wait"},
	{SpawnThread, "spawn"},
	{JoinThread, "join"},
	{ReadRandom, "random"},
	{ReadClock, "clock"},
	{FailStop, "fail"},
	{UnknownCall, "unknown-call"},
}

// String renders the set as "|"-joined bit names ("none" when empty).
func (e Effect) String() string {
	if e == 0 {
		return "none"
	}
	var parts []string
	for _, n := range effectNames {
		if e&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, "|")
}

// Level is a function's purity level: the transitive effect bitfield
// collapsed into the five-step scale the pipeline consumes. Lower is
// purer.
type Level int

const (
	// LevelPure functions compute a deterministic value from nothing:
	// no reads of caller or shared state, no effects.
	LevelPure Level = 1 + iota
	// LevelParamPure functions are deterministic functions of caller
	// thread-local state (ParamRead), still effect-free.
	LevelParamPure
	// LevelObserver functions additionally observe environment state
	// (shared reads, random, clock) but mutate nothing.
	LevelObserver
	// LevelControl functions additionally raise exceptions or alter
	// timing (throw, sleep, wait) — the side-effect-free boundary.
	LevelControl
	// LevelImpure functions mutate shared state (or are unanalyzable).
	LevelImpure
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelPure:
		return "pure"
	case LevelParamPure:
		return "param-pure"
	case LevelObserver:
		return "observer"
	case LevelControl:
		return "control"
	case LevelImpure:
		return "impure"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// LevelOf collapses a transitive effect set into its purity level.
func LevelOf(e Effect) Level {
	switch {
	case e&WriteEffects != 0:
		return LevelImpure
	case e&ControlEffects != 0:
		return LevelControl
	case e&EnvReads != 0:
		return LevelObserver
	case e&ParamRead != 0:
		return LevelParamPure
	default:
		return LevelPure
	}
}

// FuncEffects is one function's analysis result.
type FuncEffects struct {
	// Local is the Phase-1 intraprocedural effect set.
	Local Effect
	// Total is the Phase-2 transitive effect set: Local OR'd with every
	// (transitively) called or spawned function's Total.
	Total Effect
	// Level is LevelOf(Total).
	Level Level
	// Calls lists the function's direct Call/Spawn targets, sorted.
	Calls []string
}

// Analysis is the result of analyzing one program.
type Analysis struct {
	prog *sim.Program
	// Funcs maps every defined function to its effects.
	Funcs map[string]FuncEffects
}

// Analyze runs both phases over every function of p. It never fails:
// calls to undefined functions surface as UnknownCall (impure) rather
// than errors, so the analysis is usable on programs that have not
// been validated.
func Analyze(p *sim.Program) *Analysis {
	a := &Analysis{prog: p, Funcs: make(map[string]FuncEffects)}
	if p == nil {
		return a
	}
	// Phase 1: intraprocedural walk.
	for name, f := range p.Funcs {
		if f == nil {
			a.Funcs[name] = FuncEffects{Local: UnknownCall, Total: UnknownCall}
			continue
		}
		w := &walker{prog: p, calls: map[string]bool{}}
		w.block(f.Body, newDefSet())
		calls := make([]string, 0, len(w.calls))
		for c := range w.calls {
			calls = append(calls, c)
		}
		sort.Strings(calls)
		a.Funcs[name] = FuncEffects{Local: w.eff, Calls: calls}
	}
	// Phase 2: fixed-point propagation over the call graph. The
	// lattice (Effect bitsets under OR) is finite and the transfer
	// function monotone, so iterating to stability terminates even on
	// (mutually) recursive call graphs.
	total := make(map[string]Effect, len(a.Funcs))
	for name, fe := range a.Funcs {
		total[name] = fe.Local
	}
	for changed := true; changed; {
		changed = false
		for name, fe := range a.Funcs {
			t := total[name]
			for _, callee := range fe.Calls {
				ct, ok := total[callee]
				if !ok {
					ct = UnknownCall
				}
				t |= ct
			}
			if t != total[name] {
				total[name] = t
				changed = true
			}
		}
	}
	for name, fe := range a.Funcs {
		fe.Total = total[name]
		fe.Level = LevelOf(fe.Total)
		a.Funcs[name] = fe
	}
	return a
}

// Level returns fn's purity level (LevelImpure for unknown functions).
func (a *Analysis) Level(fn string) Level {
	if fe, ok := a.Funcs[fn]; ok {
		return fe.Level
	}
	return LevelImpure
}

// SideEffectFree reports whether fn's return value may be altered or
// its exceptions absorbed without corrupting shared program state: its
// transitive effects contain no shared-state write.
func (a *Analysis) SideEffectFree(fn string) bool {
	return a.Level(fn) <= LevelControl
}

// Prunable reports whether predicates anchored entirely in fn can be
// dropped before ranking: fn performs no traced accesses, raises no
// exceptions, and computes deterministically from at most caller
// thread-local state, so its per-call predicates cannot host a root
// cause (DESIGN.md "Effect analysis" gives the argument).
func (a *Analysis) Prunable(fn string) bool {
	return a.Level(fn) <= LevelParamPure
}

// Contradiction records a hand annotation the analysis refutes: the
// function is marked SideEffectFree but its transitive effects include
// a shared-state write.
type Contradiction struct {
	// Func is the annotated function.
	Func string
	// Level is the derived purity level (always LevelImpure).
	Level Level
	// Effects are the disqualifying transitive write effects.
	Effects Effect
}

func (c Contradiction) String() string {
	return fmt.Sprintf("%s: annotated side-effect-free but derived %s (%s)",
		c.Func, c.Level, c.Effects)
}

// Contradictions checks every hand SideEffectFree annotation against
// the derived result and returns the refuted ones, sorted by function
// name. The opposite direction — annotated false, derived free — is
// not flagged: an unannotated or conservatively-annotated function may
// model real-world effects the simulator abstracts away.
func (a *Analysis) Contradictions() []Contradiction {
	if a.prog == nil {
		return nil
	}
	var out []Contradiction
	for name, f := range a.prog.Funcs {
		if f == nil || !f.SideEffectFree {
			continue
		}
		if fe, ok := a.Funcs[name]; ok && fe.Level > LevelControl {
			out = append(out, Contradiction{
				Func:    name,
				Level:   fe.Level,
				Effects: fe.Total & WriteEffects,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out
}

// ---- Phase 1: the intraprocedural walker ----

// defSet tracks the thread-locals a function has defined on the walked
// path; reading a name outside it is a ParamRead.
type defSet map[string]bool

func newDefSet() defSet { return make(defSet) }

func (d defSet) clone() defSet {
	c := make(defSet, len(d))
	for k := range d {
		c[k] = true
	}
	return c
}

// intersect removes names not defined in o — the merge after a branch:
// only names defined on both paths are defined after it.
func (d defSet) intersect(o defSet) {
	for k := range d {
		if !o[k] {
			delete(d, k)
		}
	}
}

type walker struct {
	prog  *sim.Program
	eff   Effect
	calls map[string]bool
}

// read records an expression read against the defined set.
func (w *walker) read(e sim.Expr, defs defSet) {
	if e.IsVar && !defs[e.Name] {
		w.eff |= ParamRead
	}
}

func (w *walker) cond(c sim.Cond, defs defSet) {
	w.read(c.A, defs)
	w.read(c.B, defs)
}

// define records a local write.
func (w *walker) define(name string, defs defSet) {
	if name == "" {
		return
	}
	w.eff |= LocalWrite
	defs[name] = true
}

// block walks ops in order, threading the defined set flow-sensitively,
// and returns the set as left by the sequence.
func (w *walker) block(ops []sim.Op, defs defSet) defSet {
	for _, op := range ops {
		switch o := op.(type) {
		case sim.Assign:
			w.read(o.Src, defs)
			w.define(o.Dst, defs)
		case sim.Arith:
			w.read(o.A, defs)
			w.read(o.B, defs)
			if (o.Op == sim.OpDiv || o.Op == sim.OpMod) && (o.B.IsVar || o.B.Value == 0) {
				// The runtime throws DivideByZero; a nonzero literal
				// divisor provably cannot.
				w.eff |= RaiseThrow
			}
			w.define(o.Dst, defs)
		case sim.ReadGlobal:
			w.eff |= GlobalRead
			w.define(o.Dst, defs)
		case sim.WriteGlobal:
			w.read(o.Src, defs)
			w.eff |= GlobalWrite
		case sim.ArrayRead:
			w.read(o.Index, defs)
			// Out-of-range indices throw.
			w.eff |= ArrayRead | RaiseThrow
			w.define(o.Dst, defs)
		case sim.ArrayWrite:
			w.read(o.Index, defs)
			w.read(o.Src, defs)
			w.eff |= ArrayWrite | RaiseThrow
		case sim.ArrayLen:
			w.eff |= ArrayRead
			w.define(o.Dst, defs)
		case sim.ArrayResize:
			w.read(o.Len, defs)
			w.eff |= ArrayWrite | RaiseThrow
		case sim.Lock:
			w.eff |= LockAcquire
		case sim.Unlock:
			// Unlocking an unheld mutex throws SyncError.
			w.eff |= LockRelease | RaiseThrow
		case sim.Sleep:
			w.read(o.Ticks, defs)
			w.eff |= SleepTick
		case sim.WaitUntil:
			w.read(o.Val, defs)
			w.eff |= WaitGlobal | GlobalRead
		case sim.Call:
			w.edge(o.Fn)
			w.define(o.Dst, defs)
		case sim.Return:
			w.read(o.Val, defs)
		case sim.ReturnVoid:
		case sim.Throw:
			w.eff |= RaiseThrow
		case sim.Try:
			// Conservative: the body's defs are discarded (it may stop
			// anywhere), the handler's too (it may never run), and the
			// body's RaiseThrow is kept even under a catch-all handler —
			// over-approximating only pushes a function toward
			// LevelControl, never below its true level.
			w.block(o.Body, defs.clone())
			w.block(o.Handler, defs.clone())
		case sim.If:
			w.cond(o.Cond, defs)
			thenDefs := w.block(o.Then, defs.clone())
			elseDefs := w.block(o.Else, defs.clone())
			thenDefs.intersect(elseDefs)
			for k := range thenDefs {
				defs[k] = true
			}
		case sim.While:
			w.cond(o.Cond, defs)
			// The body's defs are discarded after the loop (it may run
			// zero times); within the body they accumulate normally. A
			// read of a name defined only later in the body (visible on
			// the second iteration) over-approximates to ParamRead.
			w.block(o.Body, defs.clone())
		case sim.Spawn:
			w.eff |= SpawnThread
			w.edge(o.Fn)
			w.define(o.Dst, defs)
		case sim.Join:
			w.read(o.Thread, defs)
			w.eff |= JoinThread
		case sim.Random:
			w.read(o.N, defs)
			w.eff |= ReadRandom
			w.define(o.Dst, defs)
		case sim.ReadClock:
			w.eff |= ReadClock
			w.define(o.Dst, defs)
		case sim.Fail:
			w.eff |= FailStop
		case sim.Nop:
		default:
			// An op kind this walker does not know cannot be reasoned
			// about; treat it like an unanalyzable call.
			w.eff |= UnknownCall
		}
	}
	return defs
}

// edge records a call-graph edge (Phase 2 input); a target the program
// does not define is an UnknownCall.
func (w *walker) edge(fn string) {
	if _, ok := w.prog.Funcs[fn]; !ok {
		w.eff |= UnknownCall
		return
	}
	w.calls[fn] = true
}
