//go:build !arenacheck

package arena

// Checking reports whether the arenacheck build tag is active.
const Checking = false

// resetCheck is a no-op in regular builds: Reset only rewinds offsets,
// leaving stale slab contents in place for Make to clear lazily.
func (p *Pool[T]) resetCheck() {}
