// Package arena provides typed slab allocators with epoch reset, the
// generalization of the pool discipline the compiled replay engine
// introduced (PR 4). A Pool[T] carves fixed-size slabs into caller
// slices; Reset rewinds the pool so the next epoch reuses the same
// slabs, making the steady state allocation-free once the slabs have
// grown to the workload's high-water mark.
//
// The contract is strictly epochal: every slice obtained from Make or
// Append is valid only until the owning pool (or arena) is Reset.
// Data that must outlive the epoch has to be copied out — that is what
// aid's Report.Detach does at the facade boundary. Slices are handed
// out with capacity == length, so a caller that appends past the end
// copies out of the slab instead of clobbering its neighbor.
//
// Building with the `arenacheck` tag turns on leak accounting and
// deterministic use-after-reset behavior: Reset zeroes every slab, so
// stale references read zero values instead of whatever the next epoch
// wrote, and tests can assert on Live/Epoch counters.
package arena

// Resettable is anything with epoch-reset semantics. Arena groups
// Resettables so one call rewinds every pool of a subsystem.
type Resettable interface{ Reset() }

// Arena groups pools that share an epoch. It is not safe for
// concurrent use; give each worker its own arena (or guard it the way
// the owning subsystem guards its other scratch state).
type Arena struct {
	pools []Resettable
	epoch uint64
}

// Attach registers a Resettable with the arena. Pools created through
// NewPoolIn are attached automatically.
func (a *Arena) Attach(r Resettable) { a.pools = append(a.pools, r) }

// Reset starts a new epoch: every attached pool is rewound and all
// slices handed out during the previous epoch become invalid.
func (a *Arena) Reset() {
	a.epoch++
	for _, p := range a.pools {
		p.Reset()
	}
}

// Epoch returns the number of Resets performed, so tests and leak
// checks can tie a slice to the epoch that produced it.
func (a *Arena) Epoch() uint64 { return a.epoch }

// Pool is a typed slab allocator. Zero chunkSize gets a default; the
// chunk size bounds only slab granularity, not allocation size —
// oversized requests get dedicated slabs that are released on Reset
// (sized-exactly slabs rarely fit the next epoch's request, so holding
// them would just pin memory).
type Pool[T any] struct {
	chunkSize int
	chunks    [][]T // reusable slabs, all len == chunkSize
	big       [][]T // oversized one-off slabs, dropped on Reset
	ci        int   // index of the chunk currently being carved
	off       int   // carve offset within chunks[ci]
	made      int   // elements handed out this epoch (arenacheck accounting)
}

const defaultChunk = 1024

// NewPool returns a standalone pool carving slabs of chunkSize
// elements (0 means a default).
func NewPool[T any](chunkSize int) *Pool[T] {
	if chunkSize <= 0 {
		chunkSize = defaultChunk
	}
	return &Pool[T]{chunkSize: chunkSize, ci: -1}
}

// NewPoolIn returns a pool attached to a's epoch: a.Reset rewinds it.
func NewPoolIn[T any](a *Arena, chunkSize int) *Pool[T] {
	p := NewPool[T](chunkSize)
	a.Attach(p)
	return p
}

// Make returns a zeroed slice of length and capacity n valid until the
// next Reset.
func (p *Pool[T]) Make(n int) []T {
	if n <= 0 {
		return nil
	}
	p.made += n
	if n > p.chunkSize {
		s := make([]T, n)
		p.big = append(p.big, s)
		return s
	}
	if p.ci < 0 || p.off+n > p.chunkSize {
		p.ci++
		if p.ci == len(p.chunks) {
			p.chunks = append(p.chunks, make([]T, p.chunkSize))
		}
		p.off = 0
	}
	s := p.chunks[p.ci][p.off : p.off+n : p.off+n]
	p.off += n
	clear(s) // reused slabs hold the previous epoch's values
	return s
}

// Clone copies src into the pool and returns the copy — the idiom for
// snapshotting a mutable slice into the current epoch.
func (p *Pool[T]) Clone(src []T) []T {
	if len(src) == 0 {
		return nil
	}
	dst := p.Make(len(src))
	copy(dst, src)
	return dst
}

// Reset rewinds the pool: regular slabs are kept for reuse, oversized
// slabs are released. Under the arenacheck build tag every retained
// slab is zeroed so use-after-reset reads are deterministic.
func (p *Pool[T]) Reset() {
	p.resetCheck()
	p.ci, p.off, p.made = -1, 0, 0
	p.big = nil
}

// Live returns the number of elements handed out since the last Reset.
func (p *Pool[T]) Live() int { return p.made }
