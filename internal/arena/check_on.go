//go:build arenacheck

package arena

// Checking reports whether the arenacheck build tag is active.
const Checking = true

// resetCheck zeroes every slab at Reset so a reference leaked across
// the epoch boundary reads zero values deterministically — under the
// race/check CI job, the byte-identical report pins then catch the
// leak as output drift instead of flaky garbage.
func (p *Pool[T]) resetCheck() {
	for _, c := range p.chunks {
		clear(c)
	}
	for _, b := range p.big {
		clear(b)
	}
}
