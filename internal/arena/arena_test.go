package arena

import "testing"

func TestMakeZeroedAndFullCap(t *testing.T) {
	p := NewPool[int](8)
	a := p.Make(5)
	if len(a) != 5 || cap(a) != 5 {
		t.Fatalf("Make(5): len=%d cap=%d, want 5/5", len(a), cap(a))
	}
	for i := range a {
		if a[i] != 0 {
			t.Fatalf("Make returned dirty memory at %d: %d", i, a[i])
		}
		a[i] = i + 1
	}
	// Appending past the end must copy out of the slab, not clobber
	// the next carve.
	b := append(a, 99)
	c := p.Make(3)
	if c[0] != 0 {
		t.Fatalf("append into full-cap slice leaked into next carve: %v", c)
	}
	_ = b
}

func TestResetReusesSlabs(t *testing.T) {
	p := NewPool[byte](16)
	a := p.Make(10)
	for i := range a {
		a[i] = 0xA5
	}
	p.Reset()
	if got := p.Live(); got != 0 {
		t.Fatalf("Live after Reset = %d, want 0", got)
	}
	b := p.Make(10)
	if &a[0] != &b[0] {
		t.Fatal("Reset did not reuse the slab")
	}
	for i := range b {
		if b[i] != 0 {
			t.Fatalf("Make after Reset returned dirty memory at %d", i)
		}
	}
}

func TestOversizedAllocations(t *testing.T) {
	p := NewPool[int](4)
	big := p.Make(100)
	if len(big) != 100 {
		t.Fatalf("oversized Make: len=%d", len(big))
	}
	small := p.Make(3)
	if len(small) != 3 {
		t.Fatalf("small Make after big: len=%d", len(small))
	}
	p.Reset()
	if len(p.big) != 0 {
		t.Fatal("oversized slabs not released on Reset")
	}
}

func TestCloneAndNilCases(t *testing.T) {
	p := NewPool[string](0)
	if got := p.Make(0); got != nil {
		t.Fatalf("Make(0) = %v, want nil", got)
	}
	if got := p.Clone(nil); got != nil {
		t.Fatalf("Clone(nil) = %v, want nil", got)
	}
	src := []string{"x", "y"}
	dst := p.Clone(src)
	src[0] = "mutated"
	if dst[0] != "x" || dst[1] != "y" {
		t.Fatalf("Clone shares backing with source: %v", dst)
	}
}

func TestArenaEpochReset(t *testing.T) {
	var a Arena
	p1 := NewPoolIn[int](&a, 8)
	p2 := NewPoolIn[byte](&a, 8)
	p1.Make(4)
	p2.Make(4)
	a.Reset()
	if a.Epoch() != 1 {
		t.Fatalf("Epoch = %d, want 1", a.Epoch())
	}
	if p1.Live() != 0 || p2.Live() != 0 {
		t.Fatal("arena Reset did not rewind attached pools")
	}
}

// TestSteadyStateAllocFree pins the pool's purpose: after the first
// epoch grows the slabs, subsequent epochs of the same shape must not
// allocate at all.
func TestSteadyStateAllocFree(t *testing.T) {
	p := NewPool[int](256)
	epoch := func() {
		for i := 0; i < 10; i++ {
			s := p.Make(100)
			s[0] = i
		}
		p.Reset()
	}
	epoch() // warm the slabs
	if avg := testing.AllocsPerRun(50, epoch); avg != 0 {
		t.Fatalf("steady-state epoch allocates %.1f times, want 0", avg)
	}
}
