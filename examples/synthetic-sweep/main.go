// Synthetic-benchmark walkthrough (§7.2): generate applications with
// known root causes, run all four approaches on each, and verify that
// every approach recovers the planted causal path — differing only in
// how many interventions it needs. Driven through the facade's
// synthetic re-exports.
//
//	go run ./examples/synthetic-sweep
package main

import (
	"context"
	"fmt"
	"log"

	"aid"
)

func main() {
	ctx := context.Background()

	// One instance in detail.
	inst, err := aid.GenerateSynthetic(aid.SyntheticParams{MaxThreads: 6, Seed: 7, LateSymptoms: 2})
	if err != nil {
		log.Fatal(err)
	}
	w := inst.World
	fmt.Printf("generated application: %d predicates, %d junction phases, up to %d branches\n",
		inst.N, inst.Junctions, inst.Branches)
	fmt.Printf("planted causal path (%d predicates): %v\n\n", inst.D, w.Path)

	for _, ap := range aid.Approaches() {
		n, err := aid.RunSyntheticInstance(ctx, inst, ap, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s recovered the path in %2d interventions\n", ap, n)
	}

	// A small sweep in the style of Fig. 8 (the paper uses 500
	// instances per setting; cmd/synthbench reproduces that scale).
	fmt.Println("\nmini Fig. 8 sweep (25 instances per MAXt):")
	fmt.Printf("%-10s %8s %8s %8s %8s\n", "MAXt", "TAGT", "AID-P-B", "AID-P", "AID")
	for _, maxT := range []int{2, 10, 18} {
		s, err := aid.RunSyntheticSetting(ctx, maxT, 25, 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %8.1f %8.1f %8.1f %8.1f\n", maxT,
			s.Cells[aid.ApproachTAGT].Average,
			s.Cells[aid.ApproachAIDPB].Average,
			s.Cells[aid.ApproachAIDP].Average,
			s.Cells[aid.ApproachAID].Average)
	}
}
