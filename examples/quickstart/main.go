// Quickstart: the full AID pipeline on a 40-line buggy program, driven
// entirely through the public aid facade.
//
// The program has a classic lost-update race: two workers increment a
// shared counter without a lock, and the application crashes when an
// update is lost. A Pipeline collects traces, runs statistical
// debugging, builds the approximate causal DAG, and intervenes its way
// to the root cause.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"aid"
)

func buggyProgram() *aid.Program {
	p := aid.NewProgram("quickstart", "Main")
	p.Globals["counter"] = 0

	// Unprotected read-modify-write: the race window.
	p.AddFunc("Increment",
		aid.ReadGlobal{Var: "counter", Dst: "c"},
		aid.Nop{}, aid.Nop{},
		aid.Arith{Dst: "c", A: aid.V("c"), Op: aid.OpAdd, B: aid.Lit(1)},
		aid.WriteGlobal{Var: "counter", Src: aid.V("c")},
	)
	p.AddFunc("ReadTotal",
		aid.ReadGlobal{Var: "counter", Dst: "v"},
		aid.Return{Val: aid.V("v")},
	).SideEffectFree = true
	p.AddFunc("Main",
		aid.Spawn{Fn: "Increment", Dst: "a"},
		aid.Spawn{Fn: "Increment", Dst: "b"},
		aid.Join{Thread: aid.V("a")},
		aid.Join{Thread: aid.V("b")},
		aid.Call{Fn: "ReadTotal", Dst: "total"},
		aid.If{Cond: aid.Cond{A: aid.V("total"), Op: aid.NE, B: aid.Lit(2)},
			Then: []aid.Op{aid.Throw{Kind: "LostUpdate"}}},
	)
	return p
}

func main() {
	ctx := context.Background()

	// One pipeline, stage by stage. The failure is intermittent — only
	// some schedules interleave the race windows — so collection sweeps
	// seeds until the corpus quotas are met.
	pipeline := aid.New(
		aid.WithCorpusSize(50, 50),
		aid.WithReplays(4),
	)
	source := aid.FromProgram(buggyProgram())

	// 1. Collect traces from many executions.
	traces, err := pipeline.Collect(ctx, source)
	if err != nil {
		log.Fatal(err)
	}
	succ, fail := traces.Set.Counts()
	fmt.Printf("collected %d successes, %d failures\n", succ, fail)

	// 2. Statistical debugging: extract predicates, keep the fully
	//    discriminative ones.
	corpus := pipeline.Extract(traces)
	ranking := pipeline.Rank(corpus)
	fmt.Printf("fully discriminative predicates: %d\n", len(ranking.Fully))
	for _, id := range ranking.Fully {
		fmt.Printf("  %s\n", corpus.Pred(id))
	}

	// 3. Approximate causal DAG from temporal precedence.
	dag, _, err := pipeline.BuildDAG(corpus, ranking.Fully)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Causality-guided interventions: re-execute with fault
	//    injection until the root cause is isolated.
	res, err := pipeline.Discover(ctx, traces, corpus, dag)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nroot cause: %s\n", corpus.Pred(res.RootCause()))
	fmt.Println("causal path:")
	for i, id := range res.Path {
		fmt.Printf("  (%d) %s\n", i+1, corpus.Pred(id))
	}
	fmt.Printf("interventions used: %d (vs %d predicates to test naively)\n",
		res.Interventions(), len(ranking.Fully))
}
