// Quickstart: the full AID pipeline on a 40-line buggy program.
//
// The program has a classic lost-update race: two workers increment a
// shared counter without a lock, and the application crashes when an
// update is lost. We collect traces, run statistical debugging, build
// the approximate causal DAG, and let AID intervene its way to the root
// cause.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aid/internal/acdag"
	"aid/internal/core"
	"aid/internal/inject"
	"aid/internal/predicate"
	"aid/internal/sim"
	"aid/internal/statdebug"
	"aid/internal/trace"
)

func buggyProgram() *sim.Program {
	p := sim.NewProgram("quickstart", "Main")
	p.Globals["counter"] = 0

	// Unprotected read-modify-write: the race window.
	p.AddFunc("Increment",
		sim.ReadGlobal{Var: "counter", Dst: "c"},
		sim.Nop{}, sim.Nop{},
		sim.Arith{Dst: "c", A: sim.V("c"), Op: sim.OpAdd, B: sim.Lit(1)},
		sim.WriteGlobal{Var: "counter", Src: sim.V("c")},
	)
	p.AddFunc("ReadTotal",
		sim.ReadGlobal{Var: "counter", Dst: "v"},
		sim.Return{Val: sim.V("v")},
	).SideEffectFree = true
	p.AddFunc("Main",
		sim.Spawn{Fn: "Increment", Dst: "a"},
		sim.Spawn{Fn: "Increment", Dst: "b"},
		sim.Join{Thread: sim.V("a")},
		sim.Join{Thread: sim.V("b")},
		sim.Call{Fn: "ReadTotal", Dst: "total"},
		sim.If{Cond: sim.Cond{A: sim.V("total"), Op: sim.NE, B: sim.Lit(2)},
			Then: []sim.Op{sim.Throw{Kind: "LostUpdate"}}},
	)
	return p
}

func main() {
	prog := buggyProgram()

	// 1. Collect traces from many executions; the failure is
	//    intermittent — only some schedules interleave the race windows.
	set := &trace.Set{}
	var failSeeds []int64
	for seed := int64(1); seed <= 200; seed++ {
		exec := sim.MustRun(prog, seed, sim.RunOptions{})
		set.Executions = append(set.Executions, exec)
		if exec.Failed() {
			failSeeds = append(failSeeds, seed)
		}
	}
	succ, fail := set.Counts()
	fmt.Printf("collected %d successes, %d failures\n", succ, fail)

	// 2. Statistical debugging: extract predicates, keep the fully
	//    discriminative ones.
	cfg := predicate.Config{
		SideEffectFree: func(m string) bool { return m == "ReadTotal" },
		DurationMargin: 4,
	}
	corpus := predicate.Extract(set, cfg)
	fully := statdebug.FullyDiscriminative(corpus)
	fmt.Printf("fully discriminative predicates: %d\n", len(fully))
	for _, id := range fully {
		fmt.Printf("  %s\n", corpus.Pred(id))
	}

	// 3. Approximate causal DAG from temporal precedence.
	dag, _, err := acdag.Build(corpus, fully, acdag.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Causality-guided interventions: re-execute with fault
	//    injection until the root cause is isolated.
	executor := &inject.Executor{
		Prog: prog, Corpus: corpus, Seeds: failSeeds[:4], Cfg: cfg,
	}
	for i := range set.Executions {
		if !set.Executions[i].Failed() {
			executor.Baselines = append(executor.Baselines, set.Executions[i])
		}
	}
	res, err := core.Discover(dag, executor, core.AIDOptions(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nroot cause: %s\n", corpus.Pred(res.RootCause()))
	fmt.Println("causal path:")
	for i, id := range res.Path {
		fmt.Printf("  (%d) %s\n", i+1, corpus.Pred(id))
	}
	fmt.Printf("interventions used: %d (vs %d predicates to test naively)\n",
		res.Interventions(), len(fully))
}
