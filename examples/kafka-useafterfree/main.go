// Case-study walkthrough of §7.1.2: the Kafka consumer use-after-free
// (confluent-kafka-dotnet issue #279).
//
// The main thread disposes the consumer after a grace period without
// waiting for the worker; a transient fault slows message parsing, the
// commit lands after disposal, and the call on the disposed consumer
// throws. This example runs the pipeline stage by stage to show the
// AC-DAG that AID navigates before letting the full run finish.
//
//	go run ./examples/kafka-useafterfree
package main

import (
	"context"
	"fmt"
	"log"

	"aid"
)

func main() {
	ctx := context.Background()
	study := aid.CaseStudyByName("kafka")
	fmt.Printf("application: %s (%s)\n", study.Name, study.Issue)
	fmt.Printf("bug:         %s\n\n", study.Description)

	// Peek under the hood: collect traces and show what SD and the
	// AC-DAG builder produce before any intervention happens.
	pipeline := aid.New()
	source := aid.FromStudy(study)
	traces, err := pipeline.Collect(ctx, source)
	if err != nil {
		log.Fatal(err)
	}
	corpus := pipeline.Extract(traces)
	ranking := pipeline.Rank(corpus)
	dag, report, err := pipeline.BuildDAG(corpus, ranking.Fully)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicates: %d extracted, %d fully discriminative\n", len(corpus.Preds), len(ranking.Fully))
	fmt.Printf("AC-DAG: %d safely-intervenable nodes (%d predicates excluded as unsafe)\n",
		dag.Len(), len(report.Unsafe))
	fmt.Printf("AC-DAG roots: %v\n\n", dag.Roots())

	// Now the full pipeline.
	rep, err := pipeline.Run(ctx, source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AID's explanation of the failure:")
	fmt.Print(rep.FormatExplanation())
	fmt.Printf("\ninterventions: AID %d vs TAGT %d\n", rep.AIDInterventions, rep.TAGTInterventions)
	fmt.Println("\nThe explanation matches the issue report: the consumer was")
	fmt.Println("disposed while a slowed worker was still using it; the commit on")
	fmt.Println("the disposed consumer crashed the application.")
}
