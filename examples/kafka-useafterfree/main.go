// Case-study walkthrough of §7.1.2: the Kafka consumer use-after-free
// (confluent-kafka-dotnet issue #279).
//
// The main thread disposes the consumer after a grace period without
// waiting for the worker; a transient fault slows message parsing, the
// commit lands after disposal, and the call on the disposed consumer
// throws. This example also shows the AC-DAG that AID navigates.
//
//	go run ./examples/kafka-useafterfree
package main

import (
	"fmt"
	"log"

	"aid/internal/acdag"
	"aid/internal/casestudy"
	"aid/internal/predicate"
	"aid/internal/statdebug"
)

func main() {
	study := casestudy.Kafka()
	fmt.Printf("application: %s (%s)\n", study.Name, study.Issue)
	fmt.Printf("bug:         %s\n\n", study.Description)

	// Peek under the hood: collect traces and show what SD and the
	// AC-DAG builder produce before any intervention happens.
	rc := casestudy.DefaultRunConfig()
	set, _, err := casestudy.Collect(study, rc)
	if err != nil {
		log.Fatal(err)
	}
	corpus := predicate.Extract(set, study.Config())
	fully := statdebug.FullyDiscriminative(corpus)
	dag, report, err := acdag.Build(corpus, fully, acdag.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicates: %d extracted, %d fully discriminative\n", len(corpus.Preds), len(fully))
	fmt.Printf("AC-DAG: %d safely-intervenable nodes (%d predicates excluded as unsafe)\n",
		dag.Len(), len(report.Unsafe))
	roots := dag.Roots()
	fmt.Printf("AC-DAG roots: %v\n\n", roots)

	// Now the full pipeline.
	rep, err := casestudy.Run(study, rc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("AID's explanation of the failure:")
	for _, line := range rep.Explanation {
		fmt.Println("  " + line)
	}
	fmt.Printf("\ninterventions: AID %d vs TAGT %d\n", rep.AIDInterventions, rep.TAGTInterventions)
	fmt.Println("\nThe explanation matches the issue report: the consumer was")
	fmt.Println("disposed while a slowed worker was still using it; the commit on")
	fmt.Println("the disposed consumer crashed the application.")
}
