// Offline debugging: collect traces once, persist them as a JSON-lines
// corpus, and debug later from the file — the paper's separation of
// lightweight logging from (re-runnable) analysis. The save/load round
// trip is lossless: the pipeline over the reloaded corpus reproduces
// the live run's report.
//
//	go run ./examples/offline-debug
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"aid"
)

func main() {
	ctx := context.Background()
	study := aid.CaseStudyByName("buildandtest")
	pipeline := aid.New(aid.WithCorpusSize(30, 30), aid.WithReplays(4))

	// Phase 1 (on the "test machine"): collect traces and persist them.
	traces, err := pipeline.Collect(ctx, aid.FromStudy(study))
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "aid-offline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	corpusPath := filepath.Join(dir, "traces.jsonl")
	if err := aid.WriteTraces(corpusPath, traces); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(corpusPath)
	fmt.Printf("persisted %d executions (%d bytes)\n", len(traces.Set.Executions), info.Size())

	// Phase 2 (on the "debugging machine"): reload the corpus and run
	// the whole pipeline from the file. Only the intervention phase
	// needs the application itself, re-attached with ForStudy.
	rep, err := pipeline.Run(ctx, aid.FromTraceFile(corpusPath).ForStudy(study))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(rep.Narrative)
}
