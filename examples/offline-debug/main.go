// Offline debugging: collect traces once, persist the predicate
// corpus, and analyze it later — the paper's separation of lightweight
// logging from (re-runnable) analysis, plus the narrative explanation.
//
//	go run ./examples/offline-debug
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"aid/internal/acdag"
	"aid/internal/casestudy"
	"aid/internal/core"
	"aid/internal/explain"
	"aid/internal/inject"
	"aid/internal/predicate"
	"aid/internal/statdebug"
)

func main() {
	study := casestudy.BuildAndTest()
	rc := casestudy.DefaultRunConfig()
	rc.Successes, rc.Failures = 30, 30

	// Phase 1 (on the "test machine"): collect traces, extract the
	// predicate corpus, persist it.
	set, failSeeds, err := casestudy.Collect(study, rc)
	if err != nil {
		log.Fatal(err)
	}
	corpus := predicate.Extract(set, study.Config())

	dir, err := os.MkdirTemp("", "aid-offline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	corpusPath := filepath.Join(dir, "corpus.json")
	if err := predicate.WriteCorpusFile(corpusPath, corpus); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(corpusPath)
	fmt.Printf("persisted corpus: %d predicates over %d executions (%d bytes)\n",
		len(corpus.Preds), len(corpus.Logs), info.Size())

	// Phase 2 (on the "debugging machine"): reload the corpus, build
	// the AC-DAG, and run interventions. Only the intervention phase
	// needs the application itself.
	loaded, err := predicate.ReadCorpusFile(corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	fully := statdebug.FullyDiscriminative(loaded)
	dag, _, err := acdag.Build(loaded, fully, acdag.BuildOptions{})
	if err != nil {
		log.Fatal(err)
	}
	executor := &inject.Executor{
		Prog: study.Program, Corpus: loaded,
		Seeds: failSeeds[:4], Cfg: study.Config(),
		FailureSig: study.FailureSig,
	}
	for i := range set.Executions {
		if !set.Executions[i].Failed() {
			executor.Baselines = append(executor.Baselines, set.Executions[i])
		}
	}
	res, err := core.Discover(dag, executor, core.AIDOptions(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(explain.Build(loaded, res))
}
