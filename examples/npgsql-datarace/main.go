// Case-study walkthrough of §7.1.1: the Npgsql connector-pool data race
// (GitHub issue npgsql#2485).
//
// Two threads race on the pool's index variable; a lost update leaves
// the pool table one entry short and a later lookup indexes beyond it,
// crashing the application with IndexOutOfRange. AID pinpoints the race
// as the root cause and explains how it propagates to the crash — with
// far fewer interventions than traditional adaptive group testing.
//
//	go run ./examples/npgsql-datarace
package main

import (
	"fmt"
	"log"

	"aid/internal/casestudy"
)

func main() {
	study := casestudy.Npgsql()
	fmt.Printf("application: %s (%s)\n", study.Name, study.Issue)
	fmt.Printf("bug:         %s\n\n", study.Description)

	rc := casestudy.DefaultRunConfig()
	rep, err := casestudy.Run(study, rc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("statistical debugging found %d fully-discriminative predicates;\n", rep.Discriminative)
	fmt.Printf("only %d of them form the causal path.\n\n", rep.CausalPathLen)
	fmt.Println("AID's explanation of the failure:")
	for _, line := range rep.Explanation {
		fmt.Println("  " + line)
	}
	fmt.Printf("\ninterventions: AID %d vs TAGT %d (worst-case bound %d)\n",
		rep.AIDInterventions, rep.TAGTInterventions, rep.TAGTWorstCase)

	fmt.Println("\nintervention log:")
	for i, r := range rep.AID.Rounds {
		verdict := "failure persisted"
		if r.Stopped {
			verdict = "failure stopped"
		}
		fmt.Printf("  round %d (%s): %d predicates forced -> %s", i+1, r.Phase, len(r.Intervened), verdict)
		if r.Confirmed != "" {
			fmt.Printf("; confirmed cause: %s", r.Confirmed)
		}
		if len(r.Pruned) > 0 {
			fmt.Printf("; pruned %d", len(r.Pruned))
		}
		fmt.Println()
	}
}
