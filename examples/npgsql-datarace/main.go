// Case-study walkthrough of §7.1.1: the Npgsql connector-pool data race
// (GitHub issue npgsql#2485).
//
// Two threads race on the pool's index variable; a lost update leaves
// the pool table one entry short and a later lookup indexes beyond it,
// crashing the application with IndexOutOfRange. AID pinpoints the race
// as the root cause and explains how it propagates to the crash — with
// far fewer interventions than traditional adaptive group testing. The
// intervention log streams live through the pipeline's Observer.
//
//	go run ./examples/npgsql-datarace
package main

import (
	"context"
	"fmt"
	"log"

	"aid"
)

func main() {
	study := aid.CaseStudyByName("npgsql")
	fmt.Printf("application: %s (%s)\n", study.Name, study.Issue)
	fmt.Printf("bug:         %s\n\n", study.Description)

	// Stream each intervention round as it completes.
	var roundLines []string
	observer := aid.ObserverFunc(func(e aid.Event) {
		switch ev := e.(type) {
		case aid.RoundDone:
			line := fmt.Sprintf("round %d (%s): %d predicates forced -> ",
				ev.Index, ev.Round.Phase, len(ev.Round.Intervened))
			if ev.Round.Stopped {
				line += "failure stopped"
			} else {
				line += "failure persisted"
			}
			if len(ev.Round.Pruned) > 0 {
				line += fmt.Sprintf("; pruned %d", len(ev.Round.Pruned))
			}
			roundLines = append(roundLines, line)
		case aid.CauseConfirmed:
			if n := len(roundLines); n > 0 {
				roundLines[n-1] += fmt.Sprintf("; confirmed cause: %s", ev.ID)
			}
		}
	})

	pipeline := aid.New(aid.WithObserver(observer))
	rep, err := pipeline.Run(context.Background(), aid.FromStudy(study))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("statistical debugging found %d fully-discriminative predicates;\n", rep.Discriminative)
	fmt.Printf("only %d of them form the causal path.\n\n", rep.CausalPathLen)
	fmt.Println("AID's explanation of the failure:")
	fmt.Print(rep.FormatExplanation())
	fmt.Printf("\ninterventions: AID %d vs TAGT %d (worst-case bound %d)\n",
		rep.AIDInterventions, rep.TAGTInterventions, rep.TAGTWorstCase)

	fmt.Println("\nintervention log:")
	for _, line := range roundLines {
		fmt.Println("  " + line)
	}
}
