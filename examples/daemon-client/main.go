// Daemon-mode walkthrough: drive `aid serve` over plain HTTP.
//
// The daemon (internal/service behind `aid serve`) runs discovery
// sessions for many tenants concurrently: corpora are ingested once per
// tenant, sessions stream their typed pipeline events as JSON lines,
// and same-tenant sessions debugging the same target share a scheduler
// memo so repeated runs skip already-replayed interventions.
//
// This client speaks only HTTP and the public aid package (for
// aid.UnmarshalEvent) — no internal imports — exactly like an external
// consumer would. It starts the daemon itself so the example is
// self-contained:
//
//	go run ./examples/daemon-client
//
// Point it at an already-running daemon instead with -addr:
//
//	aid serve -addr 127.0.0.1:8344 &
//	go run ./examples/daemon-client -addr 127.0.0.1:8344
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/exec"
	"strings"
	"time"

	"aid"
)

func main() {
	addr := flag.String("addr", "", "daemon address (empty = spawn `aid serve` for the demo)")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		base = spawnDaemon()
	}
	waitHealthy(base)

	// 1. Start a session for tenant "acme": the npgsql data race, small
	// corpus so the demo is quick.
	spec := map[string]any{"study": "npgsql", "successes": 12, "failures": 12}
	status := startSession(base, "acme", spec)
	fmt.Printf("session %s accepted (state %s)\n\n", status["id"], status["state"])
	id := status["id"].(string)

	// 2. Stream its events as they happen — the same typed events an
	// embedded aid.WithObserver sees, as JSON lines over HTTP.
	fmt.Println("event stream:")
	streamEvents(base, id)

	// 3. Fetch the finished report.
	rep := fetchReport(base, id)
	fmt.Printf("\nroot cause: %s\ncausal path: %d predicates, %d interventions\n",
		rep.RootCause, rep.CausalPathLen, rep.AIDInterventions)

	// 4. Run the same session again: the tenant's shared scheduler memo
	// now serves the replays, so the second session reports cache hits.
	status = startSession(base, "acme", spec)
	id2 := status["id"].(string)
	streamQuietly(base, id2)
	final := sessionStatus(base, id2)
	fmt.Printf("\nsecond run: %v scheduler requests, %v served from the shared memo\n",
		final["schedulerRequests"], final["schedulerCacheHits"])
}

// spawnDaemon starts `aid serve` on a free port and returns its base
// URL.
func spawnDaemon() string {
	cmd := exec.Command("go", "run", "./cmd/aid", "serve", "-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		log.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); i >= 0 {
			base := strings.TrimSpace(line[i:])
			go func() { // keep draining so the daemon never blocks on stderr
				for sc.Scan() {
				}
			}()
			return base
		}
	}
	log.Fatal("daemon did not report a listen address")
	return ""
}

func waitHealthy(base string) {
	for range 100 {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Fatalf("daemon at %s never became healthy", base)
}

func startSession(base, tenant string, spec map[string]any) map[string]any {
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/tenants/"+tenant+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		log.Fatalf("saturated; retry after %s seconds", resp.Header.Get("Retry-After"))
	}
	var status map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		log.Fatal(err)
	}
	return status
}

// streamEvents follows the session's JSON-lines event stream, decoding
// each line back to a typed aid event with the public codec.
func streamEvents(base, id string) {
	resp, err := http.Get(base + "/v1/sessions/" + id + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		ev, err := aid.UnmarshalEvent(line)
		if err != nil {
			// The trailing session-end envelope is service-level, not a
			// pipeline event.
			fmt.Printf("  [end] %s\n", line)
			continue
		}
		switch ev.(type) {
		case aid.RoundDone, aid.CauseConfirmed, aid.DAGBuilt, aid.DiscoveryDone:
			fmt.Println("  ", ev)
		}
	}
}

func streamQuietly(base, id string) {
	resp, err := http.Get(base + "/v1/sessions/" + id + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
	}
}

func sessionStatus(base, id string) map[string]any {
	resp, err := http.Get(base + "/v1/sessions/" + id)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var status map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		log.Fatal(err)
	}
	return status
}

func fetchReport(base, id string) *aid.Report {
	resp, err := http.Get(base + "/v1/sessions/" + id + "/report")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("report: HTTP %d", resp.StatusCode)
	}
	var rep aid.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		log.Fatal(err)
	}
	return &rep
}
