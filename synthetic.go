package aid

import (
	"context"

	"aid/internal/synthetic"
)

// Re-exports for the paper's synthetic benchmark (§7.2 / Fig. 8):
// generated applications with known root causes, measured across the
// four approaches. Exposed on the facade so benchmark drivers and
// examples need no internal imports.

// SyntheticParams configures synthetic application generation.
type SyntheticParams = synthetic.Params

// SyntheticInstance is a generated application with its ground truth.
type SyntheticInstance = synthetic.Instance

// SyntheticWorld is the ground-truth causal model of an instance.
type SyntheticWorld = synthetic.World

// SyntheticSetting aggregates one MAXt column of Fig. 8.
type SyntheticSetting = synthetic.Setting

// SyntheticCell aggregates one (approach, MAXt) cell of Fig. 8.
type SyntheticCell = synthetic.Cell

// Approach names one of the four strategies compared in Fig. 8.
type Approach = synthetic.Approach

// The four approaches of Fig. 8.
const (
	ApproachTAGT  = synthetic.TAGT
	ApproachAIDPB = synthetic.AIDPB
	ApproachAIDP  = synthetic.AIDP
	ApproachAID   = synthetic.AID
)

// Approaches lists them in the paper's legend order.
func Approaches() []Approach {
	return append([]Approach(nil), synthetic.Approaches...)
}

// Figure8MaxTs returns the x-axis values of Fig. 8.
func Figure8MaxTs() []int {
	return append([]int(nil), synthetic.Figure8MaxTs...)
}

// GenerateSynthetic builds a random application with a known causal
// path (deterministic per seed).
func GenerateSynthetic(p SyntheticParams) (*SyntheticInstance, error) {
	return synthetic.Generate(p)
}

// RunSyntheticInstance measures one approach on one instance,
// verifying the discovered path against the ground truth.
func RunSyntheticInstance(ctx context.Context, inst *SyntheticInstance, approach Approach, seed int64) (int, error) {
	return synthetic.RunInstance(ctx, inst, approach, seed)
}

// SyntheticNoise configures optional runtime nondeterminism for sweeps
// (zero value = deterministic single-observation worlds).
type SyntheticNoise = synthetic.Noise

// SyntheticSweepOptions configures a synthetic sweep beyond its shape:
// the noise model and the instance-pool width (results are identical
// for any width).
type SyntheticSweepOptions = synthetic.SweepOptions

// RunSyntheticSetting generates `instances` applications for one MAXt
// value and measures all four approaches on each (one Fig. 8 x-axis
// position; the paper uses 500 instances).
func RunSyntheticSetting(ctx context.Context, maxT, instances int, baseSeed int64) (*SyntheticSetting, error) {
	return synthetic.RunSetting(ctx, maxT, instances, baseSeed)
}

// RunSyntheticSweep is RunSyntheticSetting with explicit sweep options
// (noise model, pool width).
func RunSyntheticSweep(ctx context.Context, maxT, instances int, baseSeed int64, opts SyntheticSweepOptions) (*SyntheticSetting, error) {
	return synthetic.RunSettingOpts(ctx, maxT, instances, baseSeed, opts)
}
