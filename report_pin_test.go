package aid_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"aid"
)

var updateGoldens = flag.Bool("update", false, "rewrite testdata/reports goldens from the current tree")

// TestCaseStudyReportGoldens pins the full JSON report of every case
// study, byte for byte, against goldens captured from the PR 9 tree.
// The memory-discipline work (arenas, overlay corpus reuse, scratch
// kernels) must be invisible in the output: any drift here means an
// optimization changed behavior, not just allocation counts.
//
// Settings mirror benchOpts (trimmed 30+30 corpus, 5 replays) so the
// pin exercises the same configuration the Figure 7 benchmarks and the
// allocs/op gate measure.
func TestCaseStudyReportGoldens(t *testing.T) {
	for _, s := range aid.CaseStudies() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			pipeline := aid.New(aid.WithCorpusSize(30, 30), aid.WithReplays(5))
			rep, err := pipeline.Run(context.Background(), aid.FromStudy(s))
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.JSON()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "reports", s.Name+".json")
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to regenerate): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report for %s drifted from the pinned PR 9 baseline:\n got %d bytes\nwant %d bytes\nfirst divergence at byte %d",
					s.Name, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestDetachedReportStableAcrossRuns pins the arena aliasing contract:
// a report returned by Run is fully detached from the pooled
// construction arena, so its bytes cannot change no matter how many
// later runs reuse the same slabs. A missing Detach (or a slice that
// escapes the copy) shows up here as a mutated early report.
func TestDetachedReportStableAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run aliasing sweep")
	}
	ctx := context.Background()
	studies := aid.CaseStudies()
	p := aid.New(aid.WithCorpusSize(20, 20), aid.WithReplays(3))
	rep, err := p.Run(ctx, aid.FromStudy(studies[0]))
	if err != nil {
		t.Fatal(err)
	}
	before, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	// Hammer the pooled arena with differently-shaped reports.
	for round := 0; round < 2; round++ {
		for _, s := range studies[1:] {
			if _, err := p.Run(ctx, aid.FromStudy(s)); err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
		}
	}
	after, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("detached report mutated by later runs (first diff at byte %d)", firstDiff(before, after))
	}
}
