package aid_test

import (
	"context"
	"fmt"
	"log"

	"aid"
)

// Example debugs a classic lost-update race end-to-end through the
// public facade: build a program, point a Pipeline at it, read the
// causal explanation out of the report.
func Example() {
	p := aid.NewProgram("example", "Main")
	p.Globals["counter"] = 0
	p.AddFunc("Increment",
		aid.ReadGlobal{Var: "counter", Dst: "c"},
		aid.Nop{}, aid.Nop{},
		aid.Arith{Dst: "c", A: aid.V("c"), Op: aid.OpAdd, B: aid.Lit(1)},
		aid.WriteGlobal{Var: "counter", Src: aid.V("c")},
	)
	p.AddFunc("ReadTotal",
		aid.ReadGlobal{Var: "counter", Dst: "v"},
		aid.Return{Val: aid.V("v")},
	).SideEffectFree = true
	p.AddFunc("Main",
		aid.Spawn{Fn: "Increment", Dst: "a"},
		aid.Spawn{Fn: "Increment", Dst: "b"},
		aid.Join{Thread: aid.V("a")},
		aid.Join{Thread: aid.V("b")},
		aid.Call{Fn: "ReadTotal", Dst: "total"},
		aid.If{Cond: aid.Cond{A: aid.V("total"), Op: aid.NE, B: aid.Lit(2)},
			Then: []aid.Op{aid.Throw{Kind: "LostUpdate"}}},
	)

	pipeline := aid.New(aid.WithCorpusSize(20, 20), aid.WithReplays(3))
	rep, err := pipeline.Run(context.Background(), aid.FromProgram(p))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("root cause:", rep.RootCause)
	for _, line := range rep.Explanation {
		fmt.Println(line)
	}
	// Output:
	// root cause: race:Increment|Increment@counter
	// (1) data race between Increment and Increment on counter
	// (2) method ReadTotal (call #0) returns incorrect value (correct: 2)
	// (3) the execution fails
}
