package aid

import (
	"fmt"
	"runtime"
	"time"

	"aid/internal/acdag"
	"aid/internal/predicate"
	"aid/internal/roworacle"
	"aid/internal/statdebug"
)

// CorpusScalingResult records one corpus-scaling measurement: the same
// synthetic predicate corpus ranked and AC-DAG-built through the
// columnar store and through the preserved row-oriented oracle
// (internal/roworacle), with both outputs cross-checked equal. It is
// the evidence behind the "production-rate corpora" claim: scores are
// maintained counters and the counterfactual filter is O(1) per
// candidate, so rank+build cost stops scaling with corpus size.
type CorpusScalingResult struct {
	// Executions and Predicates are the corpus dimensions.
	Executions int `json:"executions"`
	Predicates int `json:"predicates"`
	// IngestNs is the wall-clock of streaming the corpus into the
	// columnar store row by row (scores maintained as it lands).
	IngestNs int64 `json:"ingest_ns"`
	// ColumnarNs and RowNs time rank (Scores + FullyDiscriminative) +
	// AC-DAG Build on each path.
	ColumnarNs int64 `json:"columnar_ns"`
	RowNs      int64 `json:"row_ns"`
	// ColumnarAllocs and ColumnarBytes are heap-allocation deltas
	// (runtime.MemStats) across the columnar rank+build phase.
	ColumnarAllocs int64 `json:"columnar_allocs"`
	ColumnarBytes  int64 `json:"columnar_bytes"`
	// Speedup is RowNs / ColumnarNs.
	Speedup float64 `json:"speedup"`
	// FullyDiscriminative and DAGNodes sanity-check the workload shape
	// (and are asserted identical across the two paths).
	FullyDiscriminative int `json:"fully_discriminative"`
	DAGNodes            int `json:"dag_nodes"`
}

// scalingLCG is a tiny deterministic generator so the workload is
// byte-stable across runs and architectures.
type scalingLCG uint64

func (g *scalingLCG) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g) >> 11
}

// RunCorpusScaling generates a synthetic corpus of the given dimensions
// — a causal chain of 24 fully-discriminative predicates over the
// failed rows plus noise predicates occurring in ~1.5% of rows, mixed
// durational and instantaneous kinds — ingests it into both corpus
// representations, and times rank+build on each. The two paths'
// outputs are verified identical before returning.
func RunCorpusScaling(execs, preds int, seed int64) (*CorpusScalingResult, error) {
	const causal = 24
	if preds < causal+2 || execs < 4 {
		return nil, fmt.Errorf("aid: corpus scaling needs >= %d predicates and >= 4 executions", causal+2)
	}
	table := make([]predicate.Predicate, 0, preds+1)
	table = append(table, predicate.FailurePredicate())
	for i := 0; i < preds; i++ {
		p := predicate.Predicate{
			ID:     predicate.ID(fmt.Sprintf("p%05d", i)),
			Repair: predicate.Intervention{Kind: predicate.IvLockMethods, Safe: true},
		}
		switch i % 3 {
		case 0:
			p.Kind, p.Stamp = predicate.KindWrongReturn, predicate.ByEnd
		case 1:
			p.Kind, p.Stamp = predicate.KindDataRace, predicate.ByStart
		default:
			p.Kind, p.Stamp = predicate.KindTooSlow, predicate.ByEnd // durational
		}
		table = append(table, p)
	}

	col := predicate.NewCorpus()
	row := roworacle.NewCorpus()
	for _, p := range table {
		col.AddPred(p)
		row.AddPred(p)
	}

	// Generate every row's occurrence map once; stream it into the
	// columnar store (timed: the production ingest path) and hand the
	// same map to the row corpus (its representation IS the map).
	g := scalingLCG(seed)
	var ingestNs int64
	for r := 0; r < execs; r++ {
		failed := r%2 == 1
		occ := make(map[predicate.ID]predicate.Occurrence)
		if failed {
			occ[predicate.FailureID] = predicate.Occurrence{Start: 100000, End: 100001, Thread: predicate.NoThread}
			// The causal chain occurs in every failed row, stamped in
			// chain order with per-row jitter that never crosses links.
			for k := 0; k < causal; k++ {
				base := predicate.Occurrence{
					Start:  Time(k*10) + Time(g.next()%3),
					Thread: 0,
				}
				base.End = base.Start + 2
				occ[table[1+k].ID] = base
			}
		}
		// Noise predicates occur in ~1.5% of rows regardless of outcome.
		for i := causal; i < preds; i++ {
			if g.next()%67 == 0 {
				start := Time(g.next() % 5000)
				occ[table[1+i].ID] = predicate.Occurrence{
					Start:  start,
					End:    start + Time(1+g.next()%40),
					Thread: predicate.NoThread,
				}
			}
		}
		id := fmt.Sprintf("e%06d", r)
		t0 := time.Now()
		col.AddLog(id, failed, occ)
		ingestNs += time.Since(t0).Nanoseconds()
		row.AddLog(id, failed, occ)
	}

	// Columnar rank+build, with the allocation profile of the phase.
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	colScores := statdebug.Scores(col)
	colFully := statdebug.FullyDiscriminative(col)
	colDAG, _, err := acdag.Build(col, colFully, acdag.BuildOptions{})
	colNs := time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, fmt.Errorf("aid: corpus scaling: columnar build: %w", err)
	}

	// Row-oracle rank+build over the identical corpus.
	t0 = time.Now()
	rowScores := roworacle.Scores(row)
	rowFully := roworacle.FullyDiscriminative(row)
	rowDAG, _, err := roworacle.Build(row, rowFully, acdag.BuildOptions{})
	rowNs := time.Since(t0).Nanoseconds()
	if err != nil {
		return nil, fmt.Errorf("aid: corpus scaling: row build: %w", err)
	}

	// The refactor's contract: same answers from both layouts.
	if len(colScores) != len(rowScores) {
		return nil, fmt.Errorf("aid: corpus scaling: score count diverges (%d vs %d)", len(colScores), len(rowScores))
	}
	for i := range colScores {
		if colScores[i] != rowScores[i] {
			return nil, fmt.Errorf("aid: corpus scaling: score %d diverges (%+v vs %+v)", i, colScores[i], rowScores[i])
		}
	}
	if len(colFully) != len(rowFully) {
		return nil, fmt.Errorf("aid: corpus scaling: fully-discriminative sets diverge")
	}
	for i := range colFully {
		if colFully[i] != rowFully[i] {
			return nil, fmt.Errorf("aid: corpus scaling: fully-discriminative sets diverge at %d", i)
		}
	}
	if colDAG.Len() != rowDAG.Len() || len(colDAG.ReductionEdges()) != len(rowDAG.ReductionEdges()) {
		return nil, fmt.Errorf("aid: corpus scaling: DAGs diverge (%d/%d nodes)", colDAG.Len(), rowDAG.Len())
	}

	res := &CorpusScalingResult{
		Executions:          execs,
		Predicates:          preds,
		IngestNs:            ingestNs,
		ColumnarNs:          colNs,
		RowNs:               rowNs,
		ColumnarAllocs:      int64(after.Mallocs - before.Mallocs),
		ColumnarBytes:       int64(after.TotalAlloc - before.TotalAlloc),
		FullyDiscriminative: len(colFully),
		DAGNodes:            colDAG.Len(),
	}
	if colNs > 0 {
		res.Speedup = float64(rowNs) / float64(colNs)
	}
	return res, nil
}
