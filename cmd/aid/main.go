// Command aid runs the full Adaptive Interventional Debugging pipeline
// on one of the built-in case studies: trace collection, statistical
// debugging, AC-DAG construction, causality-guided interventions, and
// the TAGT baseline, printing the root cause and the causal explanation.
//
// It is a thin shell over the public aid facade: a configured
// aid.Pipeline, an aid.TraceSource (live case study or a saved trace
// corpus via -load-traces), and the shared aid.Report formatting.
//
// Usage:
//
//	aid -case npgsql [-successes 50] [-failures 50] [-seed 1] [-rounds] [-effects] [-dot] [-json]
//	aid -case npgsql -stream            # rank as the corpus ingests (live Ranked progress)
//	aid -case npgsql -sd -top 20        # SD ranking table, top 20 rows
//	aid -case npgsql -save-traces corpus.jsonl
//	aid -case npgsql -load-traces corpus.jsonl
//	aid serve -addr 127.0.0.1:8344 -data ./corpora   # multi-tenant daemon mode
//
// In daemon mode the binary hosts the multi-tenant debugging service
// (internal/service) over an HTTP/JSON-lines API: tenants ingest trace
// corpora, start discovery sessions, stream typed pipeline events, and
// fetch reports, under a bounded global session budget with fair
// admission control. See README "Daemon mode" and examples/daemon-client.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"aid"
)

func main() {
	// Daemon mode dispatches before flag parsing: `aid serve [flags]`
	// hosts the multi-tenant debugging service (internal/service) over
	// HTTP; everything else is the classic one-shot pipeline run.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	var (
		name       = flag.String("case", "npgsql", "case study: npgsql, kafka, cosmosdb, network, buildandtest, healthtelemetry")
		successes  = flag.Int("successes", 50, "successful executions to collect")
		failures   = flag.Int("failures", 50, "failed executions to collect")
		seed       = flag.Int64("seed", 1, "algorithm seed (tie-breaking)")
		replays    = flag.Int("replays", 5, "re-executions per intervention round")
		variant    = flag.String("variant", "aid", "algorithm variant: aid, aid-p, aid-p-b")
		compounds  = flag.Int("compounds", 0, "max compound (conjunction) predicates to materialize")
		rounds     = flag.Bool("rounds", false, "stream the intervention round log as it happens")
		stream     = flag.Bool("stream", false, "rank as the corpus ingests: stream extraction row by row with live Ranked progress")
		effects    = flag.Bool("effects", false, "static effect analysis: derive side-effect-free methods and prune predicates from provably-pure regions")
		top        = flag.Int("top", 40, "rows of the -sd ranking table to print (0 = all)")
		dot        = flag.Bool("dot", false, "print the AC-DAG in Graphviz format and exit")
		sd         = flag.Bool("sd", false, "print the statistical-debugging ranking and exit (the SD baseline)")
		jsonOut    = flag.Bool("json", false, "emit the report as JSON instead of text")
		saveTraces = flag.String("save-traces", "", "save the collected trace corpus to this file (JSON lines)")
		loadTraces = flag.String("load-traces", "", "load the trace corpus from this file instead of collecting")
		workers    = flag.Int("workers", 0, "execution-pool width (0 = GOMAXPROCS); output is identical for any width")
	)
	flag.Parse()

	study := aid.CaseStudyByName(*name)
	if study == nil {
		fmt.Fprintf(os.Stderr, "aid: unknown case study %q; available:", *name)
		for _, s := range aid.CaseStudies() {
			fmt.Fprintf(os.Stderr, " %s", s.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	opts := []aid.Option{
		aid.WithCorpusSize(*successes, *failures),
		aid.WithSeedCap(20000),
		aid.WithReplays(*replays),
		aid.WithSeed(*seed),
		aid.WithVariant(aid.Variant(*variant)),
		aid.WithCompounds(*compounds),
		aid.WithWorkers(*workers),
	}
	if *effects {
		opts = append(opts, aid.WithEffectAnalysis(true))
	}
	// The -rounds, -stream and -effects logs are observers over the
	// pipeline's event stream.
	if *rounds || *stream || *effects {
		wantRounds, wantStream, wantEffects := *rounds, *stream, *effects
		opts = append(opts, aid.WithObserver(aid.ObserverFunc(func(e aid.Event) {
			switch ev := e.(type) {
			case aid.RoundDone, aid.CauseConfirmed:
				if wantRounds {
					fmt.Fprintln(os.Stderr, e)
				}
			case aid.Ranked:
				if wantStream && ev.RowsTotal > 0 {
					fmt.Fprintln(os.Stderr, e)
				}
			case aid.EffectsAnalyzed:
				if wantEffects {
					fmt.Fprintln(os.Stderr, e)
				}
			}
		})))
	}
	if *stream {
		opts = append(opts, aid.WithStreamingExtract(true))
	}
	pipeline := aid.New(opts...)

	var source aid.TraceSource = aid.FromStudy(study)
	if *loadTraces != "" {
		source = aid.FromTraceFile(*loadTraces).ForStudy(study)
	}

	ctx := context.Background()
	if *dot || *sd || *saveTraces != "" {
		if err := inspect(ctx, pipeline, source, *dot, *sd, *top, *saveTraces); err != nil {
			fmt.Fprintln(os.Stderr, "aid:", err)
			os.Exit(1)
		}
		if *dot || *sd {
			return
		}
	}

	rep, err := pipeline.Run(ctx, source)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aid:", err)
		os.Exit(1)
	}

	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "aid:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}

	fmt.Print(rep.Format())
	fmt.Println()
	fmt.Println(rep.Narrative)
	if *rounds {
		fmt.Println("\nintervention rounds:")
		fmt.Print(rep.FormatRounds())
	}
}

// inspect runs the early pipeline stages only and prints/saves the
// requested views.
func inspect(ctx context.Context, pipeline *aid.Pipeline, source aid.TraceSource, dot, sd bool, top int, savePath string) error {
	traces, err := pipeline.Collect(ctx, source)
	if err != nil {
		return err
	}
	if savePath != "" {
		if err := aid.WriteTraces(savePath, traces); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved %d executions to %s\n", len(traces.Set.Executions), savePath)
	}
	corpus := pipeline.Extract(traces)
	ranking := pipeline.Rank(corpus)
	if sd {
		fmt.Printf("statistical debugging ranking for %s (%d predicates):\n\n",
			source.Label(), len(corpus.Preds))
		fmt.Print(ranking.Format(top))
		return nil
	}
	if dot {
		dag, _, err := pipeline.BuildDAG(corpus, ranking.Fully)
		if err != nil {
			return err
		}
		fmt.Print(dag.Dot())
	}
	return nil
}
