// Command aid runs the full Adaptive Interventional Debugging pipeline
// on one of the built-in case studies: trace collection, statistical
// debugging, AC-DAG construction, causality-guided interventions, and
// the TAGT baseline, printing the root cause and the causal explanation.
//
// Usage:
//
//	aid -case npgsql [-successes 50] [-failures 50] [-seed 1] [-rounds] [-dot]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"aid/internal/acdag"
	"aid/internal/casestudy"
	"aid/internal/predicate"
	"aid/internal/statdebug"
	"aid/internal/trace"
)

func main() {
	var (
		name      = flag.String("case", "npgsql", "case study: npgsql, kafka, cosmosdb, network, buildandtest, healthtelemetry")
		successes = flag.Int("successes", 50, "successful executions to collect")
		failures  = flag.Int("failures", 50, "failed executions to collect")
		seed      = flag.Int64("seed", 1, "algorithm seed (tie-breaking)")
		replays   = flag.Int("replays", 5, "re-executions per intervention round")
		variant   = flag.String("variant", "aid", "algorithm variant: aid, aid-p, aid-p-b")
		compounds = flag.Int("compounds", 0, "max compound (conjunction) predicates to materialize")
		rounds    = flag.Bool("rounds", false, "print the intervention round log")
		dot       = flag.Bool("dot", false, "print the AC-DAG in Graphviz format and exit")
		sd        = flag.Bool("sd", false, "print the statistical-debugging ranking and exit (the SD baseline)")
		saveTrace = flag.String("save-traces", "", "save the collected trace corpus to this file (JSON lines)")
		workers   = flag.Int("workers", 0, "execution-pool width (0 = GOMAXPROCS); output is identical for any width")
	)
	flag.Parse()

	study := casestudy.ByName(*name)
	if study == nil {
		fmt.Fprintf(os.Stderr, "aid: unknown case study %q; available:", *name)
		for _, s := range casestudy.All() {
			fmt.Fprintf(os.Stderr, " %s", s.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	rc := casestudy.RunConfig{
		Successes: *successes, Failures: *failures,
		SeedCap: 20000, ReplaySeeds: *replays, Seed: *seed,
		Variant: *variant, Compounds: *compounds,
		Workers: *workers,
	}

	if *dot || *sd || *saveTrace != "" {
		if err := inspect(study, rc, *dot, *sd, *saveTrace); err != nil {
			fmt.Fprintln(os.Stderr, "aid:", err)
			os.Exit(1)
		}
		if *dot || *sd {
			return
		}
	}

	rep, err := casestudy.Run(study, rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aid:", err)
		os.Exit(1)
	}

	fmt.Printf("case study:      %s (%s)\n", rep.Study, rep.Issue)
	fmt.Printf("bug:             %s\n", rep.Description)
	fmt.Printf("SD predicates:   %d fully discriminative (of %d extracted)\n",
		rep.Discriminative, rep.TotalPredicates)
	fmt.Printf("AC-DAG:          %d nodes, %d without a path to F\n", rep.DAGNodes, rep.NoPathToF)
	fmt.Printf("root cause:      %s\n", rep.AID.RootCause())
	fmt.Printf("causal path:     %d predicates\n", rep.CausalPathLen)
	fmt.Printf("interventions:   AID %d, TAGT %d (worst-case bound %d)\n",
		rep.AIDInterventions, rep.TAGTInterventions, rep.TAGTWorstCase)
	s1, s2 := rep.AID.PruningStats()
	fmt.Printf("pruning rates:   S1=%.1f discarded/round, S2=%.1f discarded/cause (§6)\n", s1, s2)
	fmt.Println()
	fmt.Println(rep.Narrative)
	if *rounds {
		fmt.Println("\nintervention rounds:")
		for i, r := range rep.AID.Rounds {
			verdict := "failure persisted"
			if r.Stopped {
				verdict = "failure stopped"
			}
			fmt.Printf("  %2d [%s] intervene {%s} -> %s", i+1, r.Phase,
				joinIDs(r.Intervened), verdict)
			if r.Confirmed != "" {
				fmt.Printf("; confirmed %s", r.Confirmed)
			}
			if len(r.Pruned) > 0 {
				fmt.Printf("; pruned {%s}", joinIDs(r.Pruned))
			}
			fmt.Println()
		}
	}
}

// inspect runs the SD phase only and prints/saves the requested views.
func inspect(study *casestudy.Study, rc casestudy.RunConfig, dot, sd bool, savePath string) error {
	set, _, err := casestudy.Collect(study, rc)
	if err != nil {
		return err
	}
	if savePath != "" {
		if err := trace.WriteFile(savePath, set); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved %d executions to %s\n", len(set.Executions), savePath)
	}
	corpus := predicate.Extract(set, study.Config())
	if sd {
		fmt.Printf("statistical debugging ranking for %s (%d predicates):\n\n",
			study.Name, len(corpus.Preds))
		fmt.Print(statdebug.FormatScores(corpus, 40))
		return nil
	}
	if dot {
		fully := statdebug.FullyDiscriminative(corpus)
		dag, _, err := acdag.Build(corpus, fully, acdag.BuildOptions{})
		if err != nil {
			return err
		}
		fmt.Print(dag.Dot())
	}
	return nil
}

func joinIDs(ids []predicate.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ", ")
}
