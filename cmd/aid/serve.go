package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aid"
	"aid/internal/durable"
	"aid/internal/service"
)

// runServe is the daemon mode: `aid serve` hosts the multi-tenant
// debugging service over HTTP until SIGTERM/SIGINT, then drains —
// in-flight sessions get the grace period to finish before being
// cancelled, and the process exits only after every session goroutine
// has unwound.
func runServe(args []string) {
	fs := flag.NewFlagSet("aid serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8344", "listen address (host:port; :0 picks a free port)")
		data         = fs.String("data", "", "corpus data directory (JSON-lines files); empty = in-memory only")
		budget       = fs.Int("budget", 4, "global concurrent-session weight budget")
		tenantCap    = fs.Int("tenant-cap", 8, "max queued+running sessions per tenant before 429")
		timeout      = fs.Duration("session-timeout", 5*time.Minute, "default per-session lifetime cap")
		retryAfter   = fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "grace period for in-flight sessions on shutdown")
		retain       = fs.Int("retain-sessions", 256, "terminal sessions retained for status/report queries")
		memoCap      = fs.Int("memo-cap", 32, "cross-session scheduler memos retained per tenant (LRU)")
		resultCache  = fs.Int("result-cache", 0, "finished-session results served whole on a repeat spec, per tenant (LRU; 0 = off)")
		maxCorpus    = fs.Int64("max-corpus-bytes", 64<<20, "corpus ingest body cap in bytes (413 beyond it)")
		persist      = fs.String("persist", "", "state directory for the durable scheduler-memo cache; empty = memos die with the process")
		fsyncMode    = fs.String("fsync", "always", "memo-log fsync policy: always, batch, or none")
	)
	fs.Parse(args)

	policy, err := durable.ParseSyncPolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aid serve:", err)
		os.Exit(1)
	}
	cfg := service.Config{
		SessionBudget:  *budget,
		TenantCap:      *tenantCap,
		SessionTimeout: *timeout,
		RetryAfter:     *retryAfter,
		RetainSessions: *retain,
		TenantMemoCap:  *memoCap,
		ResultCacheCap: *resultCache,
		MaxCorpusBytes: *maxCorpus,
		PersistDir:     *persist,
		Fsync:          policy,
		// Recovery is warm-start degradation by design; log what it kept
		// and dropped so an operator sees lost cache warmth at startup.
		Observer: aid.ObserverFunc(func(e aid.Event) {
			fmt.Fprintf(os.Stderr, "aid serve: %s\n", e)
		}),
	}
	if *data != "" {
		store, err := service.NewFileStore(*data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "aid serve:", err)
			os.Exit(1)
		}
		cfg.Store = store
	}
	mgr := service.NewManager(cfg)
	if *persist != "" {
		// NewManager degrades to persistence-off when the state directory
		// is unusable; an operator who asked for -persist wants that loud
		// at startup, not discovered on the stats endpoint after a crash.
		if st := mgr.Stats(); st.Recovery != nil && st.Recovery.Error != "" {
			fmt.Fprintf(os.Stderr, "aid serve: persistence disabled: %s\n", st.Recovery.Error)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aid serve:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: service.NewHandler(mgr)}
	fmt.Fprintf(os.Stderr, "aid serve: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "aid serve: %s; draining (up to %s)\n", sig, *drainTimeout)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "aid serve:", err)
		os.Exit(1)
	}

	// Drain: stop accepting HTTP, then let sessions finish under the
	// grace period; Manager.Shutdown force-cancels stragglers and waits
	// for their goroutines either way.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "aid serve: http shutdown:", err)
	}
	if err := mgr.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "aid serve: drain timed out; sessions cancelled")
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "aid serve: drained cleanly")
}
