// Command synthbench regenerates the paper's Fig. 8: average and
// worst-case intervention counts for TAGT, AID-P-B, AID-P and AID over
// synthetically generated applications, sweeping the maximum thread
// count MAXt.
//
// Usage:
//
//	synthbench [-instances 500] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"aid"
)

func main() {
	var (
		instances = flag.Int("instances", 500, "applications per MAXt setting (paper: 500)")
		seed      = flag.Int64("seed", 1, "base generation seed")
		flaky     = flag.Bool("flaky", false, "add runtime nondeterminism: 75% failure manifestation, 20% symptom flicker, adaptive trial oracle")
		fixedRuns = flag.Int("fixed-runs", 0, "with -flaky, use the legacy fixed runs-per-round repetition (e.g. 6) instead of the adaptive oracle")
		workers   = flag.Int("workers", 0, "instance-pool width (0 = GOMAXPROCS); output is identical for any width")
	)
	flag.Parse()

	noise := aid.SyntheticNoise{}
	if *flaky {
		noise = aid.SyntheticNoise{ManifestProb: 0.75, SymptomNoise: 0.2, Adaptive: true}
		if *fixedRuns > 0 {
			noise = aid.SyntheticNoise{Runs: *fixedRuns, ManifestProb: 0.75, SymptomNoise: 0.2}
		}
	}
	var settings []*aid.SyntheticSetting
	for _, maxT := range aid.Figure8MaxTs() {
		s, err := aid.RunSyntheticSweep(context.Background(), maxT, *instances, *seed+int64(maxT)*1000003,
			aid.SyntheticSweepOptions{Noise: noise, Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, "synthbench:", err)
			os.Exit(1)
		}
		settings = append(settings, s)
	}
	mode := "deterministic worlds"
	if *flaky {
		if noise.Adaptive {
			mode = fmt.Sprintf("flaky worlds (adaptive trial oracle, %.0f%% manifestation, %.0f%% flicker)",
				noise.ManifestProb*100, noise.SymptomNoise*100)
		} else {
			mode = fmt.Sprintf("flaky worlds (%d runs/round, %.0f%% manifestation, %.0f%% flicker)",
				noise.Runs, noise.ManifestProb*100, noise.SymptomNoise*100)
		}
	}
	fmt.Printf("Figure 8 — synthetic benchmark, %d applications per setting, %s\n\n", *instances, mode)

	fmt.Println("Average #interventions:")
	printTable(settings, func(c aid.SyntheticCell) string {
		return fmt.Sprintf("%8.1f", c.Average)
	})
	fmt.Println()
	fmt.Println("Worst-case #interventions:")
	printTable(settings, func(c aid.SyntheticCell) string {
		return fmt.Sprintf("%8d", c.WorstCase)
	})
	fmt.Println()
	fmt.Println("Average #predicates (grey dotted line) and causal-path length:")
	fmt.Printf("%-10s", "MAXt")
	for _, s := range settings {
		fmt.Printf("%8d", s.MaxT)
	}
	fmt.Printf("\n%-10s", "#preds")
	for _, s := range settings {
		fmt.Printf("%8.1f", s.AvgPreds)
	}
	fmt.Printf("\n%-10s", "D")
	for _, s := range settings {
		fmt.Printf("%8.1f", s.AvgD)
	}
	fmt.Println()
	if *flaky {
		fmt.Println("\nMisidentified instances (path deviated from ground truth under noise):")
		printTable(settings, func(c aid.SyntheticCell) string {
			for _, s := range settings {
				if s.MaxT == c.MaxT {
					return fmt.Sprintf("%8d", s.Misidentified[c.Approach])
				}
			}
			return fmt.Sprintf("%8d", 0)
		})
	}
}

func printTable(settings []*aid.SyntheticSetting, cell func(aid.SyntheticCell) string) {
	fmt.Printf("%-10s", "MAXt")
	for _, s := range settings {
		fmt.Printf("%8d", s.MaxT)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 10+8*len(settings)))
	for _, ap := range aid.Approaches() {
		fmt.Printf("%-10s", ap)
		for _, s := range settings {
			fmt.Print(cell(s.Cells[ap]))
		}
		fmt.Println()
	}
}
