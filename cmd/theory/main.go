// Command theory regenerates the analytical artifacts of §6: the Fig. 6
// comparison of search spaces and intervention bounds between Causal
// Path Discovery (CPD) and plain Group Testing (GT) on the symmetric
// AC-DAG, and the Example 3 search-space numbers.
//
// Usage:
//
//	theory [-J 3] [-B 4] [-n 5] [-D 4] [-S1 2] [-S2 2]
package main

import (
	"flag"
	"fmt"

	"aid/internal/theory"
)

func main() {
	var (
		j  = flag.Int("J", 3, "junctions in the symmetric AC-DAG")
		b  = flag.Int("B", 4, "branches per junction")
		n  = flag.Int("n", 5, "predicates per branch")
		d  = flag.Int("D", 4, "causal predicates")
		s1 = flag.Int("S1", 2, "predicates discarded per intervention (Theorem 2)")
		s2 = flag.Int("S2", 2, "predicates discarded per discovery (Theorem 3)")
	)
	flag.Parse()

	total := *j * *b * *n
	fmt.Printf("Figure 6 — symmetric AC-DAG: J=%d junctions × B=%d branches × n=%d predicates (N=%d, D=%d)\n\n",
		*j, *b, *n, total, *d)
	rows := theory.Figure6(*j, *b, *n, *d, *s1, *s2)
	fmt.Printf("%-6s %18s %14s %14s\n", "Model", "log2(SearchSpace)", "LowerBound", "UpperBound")
	for _, r := range rows {
		fmt.Printf("%-6s %18.2f %14.2f %14.2f\n", r.Model, r.SearchSpaceLog2, r.LowerBound, r.UpperBound)
	}

	fmt.Println("\nExample 3 — Fig. 5(a): one junction, two branches of three predicates:")
	fmt.Printf("  GT search space:  %s (= 2^6)\n", theory.SymmetricGTSpace(1, 2, 3))
	fmt.Printf("  CPD search space: %s (= 2·(2^3−1)+1)\n", theory.SymmetricCPDSpace(1, 2, 3))

	fmt.Println("\nLemma 1 — expansion rules on two 3-chains:")
	fmt.Printf("  horizontal (parallel):  %s\n",
		theory.HorizontalExpand(theory.ChainSpace(3), theory.ChainSpace(3)))
	fmt.Printf("  vertical (sequential):  %s\n",
		theory.VerticalExpand(theory.ChainSpace(3), theory.ChainSpace(3)))

	fmt.Println("\nBounds as functions of pruning rates (N =", total, ", D =", *d, "):")
	fmt.Printf("  GT lower bound  log2 C(N,D):            %.2f\n", theory.GTLowerBound(total, *d))
	for _, s := range []int{1, 2, 4, 8} {
		fmt.Printf("  CPD lower bound (Thm 2, S1=%d):          %.2f\n", s, theory.CPDLowerBound(total, *d, s))
	}
	fmt.Printf("  TAGT upper bound D·log2 N:              %.2f\n", theory.TAGTUpperBound(total, *d))
	for _, s := range []int{1, 2, 4, 8} {
		fmt.Printf("  AID upper bound (Thm 3, S2=%d):          %.2f\n", s, theory.AIDPruningUpperBound(total, *d, s))
	}
	fmt.Printf("  AID upper bound with branch pruning:    %.2f  (J·log2 T + D·log2 NM, T=%d, NM=%d)\n",
		theory.AIDBranchUpperBound(*j, *b, *j**n, *d), *b, *j**n)
}
