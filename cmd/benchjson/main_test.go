package main

import (
	"strings"
	"testing"
)

func runPair(baseAllocs, baseBytes, baseNs, curAllocs, curBytes, curNs int64) (*Run, *Run) {
	base := &Run{Figures: []Figure{{
		Name: "Figure7/npgsql", NsPerOp: baseNs, AllocsPerOp: baseAllocs, BytesPerOp: baseBytes,
	}}}
	cur := &Run{Figures: []Figure{{
		Name: "Figure7/npgsql", NsPerOp: curNs, AllocsPerOp: curAllocs, BytesPerOp: curBytes,
	}}}
	return base, cur
}

// TestCheckRegressionsGate pins the -check gate's behavior: an
// injected allocation regression past the tolerance band must fail,
// growth inside the band or under the absolute slack must pass, and
// wall-clock movement must only ever warn.
func TestCheckRegressionsGate(t *testing.T) {
	const tol = 0.15

	// Injected regression: +50% allocs on a large figure fails.
	base, cur := runPair(10000, 2_000_000, 5e6, 15000, 2_000_000, 5e6)
	violations, _ := checkRegressions(base, cur, tol)
	if len(violations) != 1 || !strings.Contains(violations[0], "allocs/op") {
		t.Fatalf("injected allocs regression not caught: %v", violations)
	}

	// Bytes regression alone is caught too.
	base, cur = runPair(10000, 2_000_000, 5e6, 10000, 3_000_000, 5e6)
	violations, _ = checkRegressions(base, cur, tol)
	if len(violations) != 1 || !strings.Contains(violations[0], "bytes/op") {
		t.Fatalf("injected bytes regression not caught: %v", violations)
	}

	// Growth inside the relative band passes.
	base, cur = runPair(10000, 2_000_000, 5e6, 11000, 2_200_000, 5e6)
	if violations, _ = checkRegressions(base, cur, tol); len(violations) != 0 {
		t.Fatalf("in-band growth flagged: %v", violations)
	}

	// Tiny figures breathe under the absolute slack even when the
	// relative growth is large (26 -> 300 allocs is under the floor).
	base, cur = runPair(26, 3000, 9e3, 300, 30_000, 9e3)
	if violations, _ = checkRegressions(base, cur, tol); len(violations) != 0 {
		t.Fatalf("sub-slack growth flagged: %v", violations)
	}
	// ... but not past it.
	base, cur = runPair(26, 3000, 9e3, 600, 3000, 9e3)
	if violations, _ = checkRegressions(base, cur, tol); len(violations) != 1 {
		t.Fatalf("past-slack growth not caught: %v", violations)
	}

	// Wall clock doubling warns, never fails.
	base, cur = runPair(10000, 2_000_000, 5e6, 10000, 2_000_000, 11e6)
	violations, warnings := checkRegressions(base, cur, tol)
	if len(violations) != 0 {
		t.Fatalf("wall-clock movement treated as a violation: %v", violations)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "ns/op") {
		t.Fatalf("wall-clock doubling did not warn: %v", warnings)
	}

	// A dropped figure cannot silently pass the gate.
	base, cur = runPair(10000, 2_000_000, 5e6, 10000, 2_000_000, 5e6)
	cur.Figures[0].Name = "Figure7/renamed"
	if violations, _ = checkRegressions(base, cur, tol); len(violations) != 1 {
		t.Fatalf("dropped baseline figure not caught: %v", violations)
	}

	// Throughput-bounded figures are measured but not gated: their
	// allocation totals scale with how many sessions the host pushes
	// through the measurement window, not with per-session cost.
	base, cur = runPair(1_439_722, 190_705_112, 4.5e8, 3_466_783, 992_678_752, 1.9e9)
	base.Figures[0].Name, cur.Figures[0].Name = "Serve/fairness", "Serve/fairness"
	violations, warnings = checkRegressions(base, cur, tol)
	if len(violations) != 0 || len(warnings) != 0 {
		t.Fatalf("ungated throughput figure flagged: %v / %v", violations, warnings)
	}
	// ... but dropping one still fails.
	cur.Figures = nil
	if violations, _ = checkRegressions(base, cur, tol); len(violations) != 1 {
		t.Fatalf("dropped ungated figure not caught: %v", violations)
	}

	// Improvements and brand-new figures pass clean.
	base, cur = runPair(10000, 2_000_000, 5e6, 4000, 800_000, 2e6)
	cur.Figures = append(cur.Figures, Figure{Name: "Serve/warm-session", AllocsPerOp: 26})
	violations, warnings = checkRegressions(base, cur, tol)
	if len(violations) != 0 || len(warnings) != 0 {
		t.Fatalf("improvement flagged: %v / %v", violations, warnings)
	}
}
