// Command benchjson regenerates the paper's figures and writes the
// wall-clock plus figure metrics as machine-readable JSON, so the
// perf trajectory of the pipeline can be tracked across commits.
//
// Usage:
//
//	benchjson [-o BENCH_pipeline.json] [-instances 60] [-successes 30] [-failures 30] [-workers 0] [-baseline old.json] [-repeat 3]
//
// With -baseline, the named file's "current" section is embedded as
// "baseline" in the output, giving a self-contained before/after
// record.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"maps"
	"math"
	"os"
	"runtime"
	"time"

	"aid"
	"aid/internal/effects"
	"aid/internal/service"
)

// Figure is one benchmarked figure workload: its wall-clock, its
// allocation profile, and the paper metrics it reproduces.
type Figure struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap-allocation deltas
	// (runtime.MemStats Mallocs/TotalAlloc) across the whole figure
	// pass, summed over all pool workers.
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// measure runs fn repeat times and keeps the fastest pass — one-shot
// wall-clock records on shared hosts are dominated by scheduling
// noise, and the minimum is the standard robust estimator. Every pass
// re-runs the full deterministic workload, so the caller can (and
// does) assert the figure metrics agree across passes.
func measure(repeat int, fn func() error) (Figure, error) {
	if repeat < 1 {
		repeat = 1
	}
	best := Figure{NsPerOp: math.MaxInt64}
	for r := 0; r < repeat; r++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := fn(); err != nil {
			return Figure{}, err
		}
		ns := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&after)
		if ns < best.NsPerOp {
			best = Figure{
				NsPerOp:     ns,
				AllocsPerOp: int64(after.Mallocs - before.Mallocs),
				BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
			}
		}
	}
	return best, nil
}

// checkMetrics enforces the determinism contract across measurement
// passes: identical flags must yield identical figure metrics.
func checkMetrics(name string, prev, cur map[string]float64) {
	if prev != nil && !maps.Equal(prev, cur) {
		fatal(fmt.Errorf("%s: metrics differ between measurement passes (nondeterminism): %v vs %v", name, prev, cur))
	}
}

// Run is one full measurement pass.
type Run struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Note       string   `json:"note,omitempty"`
	Figures    []Figure `json:"figures"`
}

// Doc is the on-disk document: the current run plus an optional
// baseline for before/after comparison.
type Doc struct {
	Baseline *Run `json:"baseline,omitempty"`
	Current  *Run `json:"current"`
}

func main() {
	var (
		out       = flag.String("o", "BENCH_pipeline.json", "output file")
		instances = flag.Int("instances", 60, "Fig. 8 instances per MAXt setting")
		successes = flag.Int("successes", 30, "Fig. 7 successes per study")
		failures  = flag.Int("failures", 30, "Fig. 7 failures per study")
		workers   = flag.Int("workers", 0, "execution-pool width (0 = GOMAXPROCS)")
		baseline  = flag.String("baseline", "", "embed this file's current run as the baseline")
		repeat    = flag.Int("repeat", 3, "measurement passes per figure (fastest is recorded; metrics must agree)")
	)
	flag.Parse()

	// Read the baseline up front so a bad path fails before the
	// (minutes-long at paper scale) measurement pass, not after.
	var prevRun *Run
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var prev Doc
		if err := json.Unmarshal(raw, &prev); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *baseline, err))
		}
		prevRun = prev.Current
	}

	run := &Run{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		// Record the resolved pool width, not the 0 sentinel, so the
		// perf record says what actually ran.
		Workers: aid.ResolveWorkers(*workers),
	}

	pipeline := aid.New(
		aid.WithCorpusSize(*successes, *failures),
		aid.WithWorkers(*workers),
	)
	for _, s := range aid.CaseStudies() {
		fmt.Fprintf(os.Stderr, "benchjson: Figure7/%s...\n", s.Name)
		name := "Figure7/" + s.Name
		var metrics map[string]float64
		fig, err := measure(*repeat, func() error {
			rep, err := pipeline.Run(context.Background(), aid.FromStudy(s))
			if err != nil {
				return err
			}
			m := map[string]float64{
				"discrim-preds":      float64(rep.Discriminative),
				"causal-path":        float64(rep.CausalPathLen),
				"AID-interventions":  float64(rep.AIDInterventions),
				"TAGT-interventions": float64(rep.TAGTInterventions),
				"TAGT-bound":         float64(rep.TAGTWorstCase),
			}
			checkMetrics(name, metrics, m)
			metrics = m
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fig.Name = name
		fig.Metrics = metrics
		run.Figures = append(run.Figures, fig)
	}

	for _, maxT := range aid.Figure8MaxTs() {
		fmt.Fprintf(os.Stderr, "benchjson: Figure8/MAXt=%d...\n", maxT)
		name := fmt.Sprintf("Figure8/MAXt=%d", maxT)
		var metrics map[string]float64
		fig, err := measure(*repeat, func() error {
			st, err := aid.RunSyntheticSweep(context.Background(), maxT, *instances, 1234,
				aid.SyntheticSweepOptions{Workers: *workers})
			if err != nil {
				return err
			}
			m := map[string]float64{"avg-preds": st.AvgPreds}
			for _, ap := range aid.Approaches() {
				c := st.Cells[ap]
				m[string(ap)+"-avg"] = c.Average
				m[string(ap)+"-worst"] = float64(c.WorstCase)
			}
			checkMetrics(name, metrics, m)
			metrics = m
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fig.Name = name
		fig.Metrics = metrics
		run.Figures = append(run.Figures, fig)
	}

	// Effect-analysis record: the pruning demo workload (a lost-update
	// race surrounded by provably-pure checksum/relay helpers) with the
	// static effect analysis off and on. The paired cells record the
	// intervention-round and predicate-count deltas pruning buys; the
	// wall-clock delta is the NsPerOp difference between them.
	for _, on := range []bool{false, true} {
		state := "off"
		if on {
			state = "on"
		}
		name := "Figure8/effects=" + state
		fmt.Fprintf(os.Stderr, "benchjson: %s...\n", name)
		var metrics map[string]float64
		fig, err := measure(*repeat, func() error {
			var pruned float64
			epipe := aid.New(
				aid.WithCorpusSize(*successes, *failures),
				aid.WithWorkers(*workers),
				aid.WithEffectAnalysis(on),
				aid.WithObserver(aid.ObserverFunc(func(e aid.Event) {
					if ev, ok := e.(aid.EffectsAnalyzed); ok {
						pruned = float64(ev.Pruned)
					}
				})),
			)
			rep, err := epipe.Run(context.Background(), aid.FromProgram(effects.PruningDemo(4, 6)))
			if err != nil {
				return err
			}
			m := map[string]float64{
				"total-preds":       float64(rep.TotalPredicates),
				"preds-pruned":      pruned,
				"AID-interventions": float64(rep.AIDInterventions),
			}
			checkMetrics(name, metrics, m)
			metrics = m
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fig.Name = name
		fig.Metrics = metrics
		run.Figures = append(run.Figures, fig)
	}

	// Corpus-scaling record: rank + AC-DAG build over a 50k-execution ×
	// 2k-predicate synthetic corpus, columnar store vs the preserved
	// row-oriented oracle (outputs cross-checked equal inside the run).
	// NsPerOp and the allocation profile are the columnar phase's; the
	// row path's wall-clock and the speedup land in the metrics.
	{
		const scaleExecs, scalePreds = 50000, 2000
		name := fmt.Sprintf("CorpusScaling/%dx%d", scaleExecs, scalePreds)
		fmt.Fprintf(os.Stderr, "benchjson: %s...\n", name)
		passes := *repeat
		if passes < 1 {
			passes = 1 // mirror measure()'s clamp
		}
		var metrics map[string]float64
		var best *aid.CorpusScalingResult
		for r := 0; r < passes; r++ {
			res, err := aid.RunCorpusScaling(scaleExecs, scalePreds, 1)
			if err != nil {
				fatal(err)
			}
			m := map[string]float64{
				"fully-discriminative": float64(res.FullyDiscriminative),
				"dag-nodes":            float64(res.DAGNodes),
			}
			checkMetrics(name, metrics, m)
			metrics = m
			if best == nil || res.ColumnarNs < best.ColumnarNs {
				best = res
			}
		}
		metrics["row-ns"] = float64(best.RowNs)
		metrics["ingest-ns"] = float64(best.IngestNs)
		metrics["rank+build-speedup"] = best.Speedup
		run.Figures = append(run.Figures, Figure{
			Name:        name,
			NsPerOp:     best.ColumnarNs,
			AllocsPerOp: best.ColumnarAllocs,
			BytesPerOp:  best.ColumnarBytes,
			Metrics:     metrics,
		})
	}

	// Serve fairness record: a light tenant's p95 session latency alone
	// on the daemon versus under a flooding tenant that keeps a budget-4
	// daemon saturated. The session counts are deterministic and go
	// through the determinism check; the latencies are wall-clock and do
	// not, so they are recorded from the best pass (lowest p95 ratio,
	// the gated quantity — a pass can have a low loaded p95 and still a
	// high ratio when its unloaded baseline ran fast) — mirroring
	// CorpusScaling's row-ns. The best pass must stay within the 3x
	// fairness bound, the same gate BenchmarkServeConcurrentSessions
	// enforces per iteration.
	{
		const serveBudget, serveLight = 4, 20
		name := "Serve/fairness"
		fmt.Fprintf(os.Stderr, "benchjson: %s...\n", name)
		passes := *repeat
		if passes < 1 {
			passes = 1 // mirror measure()'s clamp
		}
		var metrics map[string]float64
		var best *service.FairnessResult
		var bestFig Figure
		for r := 0; r < passes; r++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			res, err := service.RunFairnessBench(context.Background(), serveBudget, serveLight)
			if err != nil {
				fatal(err)
			}
			ns := time.Since(start).Nanoseconds()
			runtime.ReadMemStats(&after)
			m := map[string]float64{
				"light-sessions": float64(res.LightSessions),
				"light-ok":       float64(res.LightOK),
			}
			checkMetrics(name, metrics, m)
			metrics = m
			if best == nil || res.Ratio < best.Ratio {
				best = res
				bestFig = Figure{
					NsPerOp:     ns,
					AllocsPerOp: int64(after.Mallocs - before.Mallocs),
					BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
				}
			}
		}
		if best.Ratio > 3 {
			fatal(fmt.Errorf("%s: fairness violated: loaded p95 %.2fx unloaded; bound is 3x", name, best.Ratio))
		}
		metrics["unloaded-p95-ns"] = float64(best.UnloadedP95Ns)
		metrics["loaded-p95-ns"] = float64(best.LoadedP95Ns)
		metrics["p95-ratio"] = best.Ratio
		metrics["flood-sessions"] = float64(best.FloodSessions)
		bestFig.Name = name
		bestFig.Metrics = metrics
		run.Figures = append(run.Figures, bestFig)
	}

	doc := &Doc{Baseline: prevRun, Current: run}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d figures)\n", *out, len(run.Figures))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
