// Command benchjson regenerates the paper's figures and writes the
// wall-clock plus figure metrics as machine-readable JSON, so the
// perf trajectory of the pipeline can be tracked across commits.
//
// Usage:
//
//	benchjson [-o BENCH_pipeline.json] [-instances 60] [-successes 30] [-failures 30] [-workers 0] [-baseline old.json] [-repeat 3] [-check] [-tolerance 0.15]
//
// With -baseline, the named file's "current" section is embedded as
// "baseline" in the output, giving a self-contained before/after
// record.
//
// With -check (requires -baseline), the freshly measured figures are
// compared against the baseline's: an allocs/op or bytes/op increase
// beyond the tolerance band fails the run (exit 1) — the CI allocation
// gate. Wall clock is warn-only: ns/op on shared hosts is scheduling
// noise, while allocation counts are near-deterministic for the same
// workload, especially under GOMAXPROCS=1. Compare like with like:
// the baseline must have been generated at the same scale flags and
// GOMAXPROCS as the checking run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"maps"
	"math"
	"os"
	"runtime"
	"time"

	"aid"
	"aid/internal/effects"
	"aid/internal/service"
)

// Figure is one benchmarked figure workload: its wall-clock, its
// allocation profile, and the paper metrics it reproduces.
type Figure struct {
	Name    string `json:"name"`
	NsPerOp int64  `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are heap-allocation deltas
	// (runtime.MemStats Mallocs/TotalAlloc) across the whole figure
	// pass, summed over all pool workers.
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// measure runs fn repeat times and keeps the fastest pass — one-shot
// wall-clock records on shared hosts are dominated by scheduling
// noise, and the minimum is the standard robust estimator. Every pass
// re-runs the full deterministic workload, so the caller can (and
// does) assert the figure metrics agree across passes.
func measure(repeat int, fn func() error) (Figure, error) {
	if repeat < 1 {
		repeat = 1
	}
	best := Figure{NsPerOp: math.MaxInt64}
	for r := 0; r < repeat; r++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := fn(); err != nil {
			return Figure{}, err
		}
		ns := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&after)
		if ns < best.NsPerOp {
			best = Figure{
				NsPerOp:     ns,
				AllocsPerOp: int64(after.Mallocs - before.Mallocs),
				BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
			}
		}
	}
	return best, nil
}

// checkMetrics enforces the determinism contract across measurement
// passes: identical flags must yield identical figure metrics.
func checkMetrics(name string, prev, cur map[string]float64) {
	if prev != nil && !maps.Equal(prev, cur) {
		fatal(fmt.Errorf("%s: metrics differ between measurement passes (nondeterminism): %v vs %v", name, prev, cur))
	}
}

// Run is one full measurement pass.
type Run struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Workers    int      `json:"workers"`
	Note       string   `json:"note,omitempty"`
	Figures    []Figure `json:"figures"`
}

// Doc is the on-disk document: the current run plus an optional
// baseline for before/after comparison.
type Doc struct {
	Baseline *Run `json:"baseline,omitempty"`
	Current  *Run `json:"current"`
}

// Absolute slack under which an allocation delta is never a
// regression: small figures breathe (pool warmup, GC bookkeeping, a
// map rehash) without tripping the relative band, while a real
// regression on the measured pipeline costs thousands of allocations.
const (
	checkAllocSlack int64 = 512
	checkByteSlack  int64 = 64 << 10
)

// checkUngated names figures whose work-per-op is bounded by wall
// clock rather than fixed: the fairness figure floods a tenant for a
// measurement window, so its allocation totals scale with how many
// sessions the host pushes through — a faster host (or a faster
// pipeline) raises them without any per-session regression. Gating
// them would flap; the figure's own fairness bound still fails the
// run, and the per-session pipeline cost is gated by every fixed-work
// figure.
var checkUngated = map[string]bool{
	"Serve/fairness": true,
}

// checkRegressions compares a fresh run's allocation figures against a
// baseline run. For every baseline figure, allocs/op and bytes/op may
// grow by at most tol (relative) or the absolute slack, whichever is
// larger; beyond that is a violation. A baseline figure the fresh run
// no longer measures is a violation too (a silently dropped workload
// would pass every band). New figures pass — they have no baseline.
// Wall clock lands in warnings when it more than doubles, never in
// violations. Figures in checkUngated must still be measured but
// their per-op numbers are informational.
func checkRegressions(base, cur *Run, tol float64) (violations, warnings []string) {
	byName := make(map[string]Figure, len(cur.Figures))
	for _, f := range cur.Figures {
		byName[f.Name] = f
	}
	band := func(v, slack int64) int64 {
		return v + max(int64(tol*float64(v)), slack)
	}
	for _, b := range base.Figures {
		c, ok := byName[b.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: in baseline but not measured by this run", b.Name))
			continue
		}
		if checkUngated[b.Name] {
			continue
		}
		if limit := band(b.AllocsPerOp, checkAllocSlack); c.AllocsPerOp > limit {
			violations = append(violations, fmt.Sprintf("%s: allocs/op %d -> %d exceeds limit %d (baseline + max(%.0f%%, %d))",
				b.Name, b.AllocsPerOp, c.AllocsPerOp, limit, tol*100, checkAllocSlack))
		}
		if limit := band(b.BytesPerOp, checkByteSlack); c.BytesPerOp > limit {
			violations = append(violations, fmt.Sprintf("%s: bytes/op %d -> %d exceeds limit %d (baseline + max(%.0f%%, %d))",
				b.Name, b.BytesPerOp, c.BytesPerOp, limit, tol*100, checkByteSlack))
		}
		if c.NsPerOp > 2*b.NsPerOp {
			warnings = append(warnings, fmt.Sprintf("%s: ns/op %d -> %d (wall clock is warn-only)",
				b.Name, b.NsPerOp, c.NsPerOp))
		}
	}
	return violations, warnings
}

func main() {
	var (
		out       = flag.String("o", "BENCH_pipeline.json", "output file")
		instances = flag.Int("instances", 60, "Fig. 8 instances per MAXt setting")
		successes = flag.Int("successes", 30, "Fig. 7 successes per study")
		failures  = flag.Int("failures", 30, "Fig. 7 failures per study")
		workers   = flag.Int("workers", 0, "execution-pool width (0 = GOMAXPROCS)")
		baseline  = flag.String("baseline", "", "embed this file's current run as the baseline")
		repeat    = flag.Int("repeat", 3, "measurement passes per figure (fastest is recorded; metrics must agree)")
		check     = flag.Bool("check", false, "fail (exit 1) when allocs/op or bytes/op regress past -tolerance vs -baseline; ns is warn-only")
		tolerance = flag.Float64("tolerance", 0.15, "relative allocation growth allowed by -check before failing")
	)
	flag.Parse()
	if *check && *baseline == "" {
		fatal(fmt.Errorf("-check requires -baseline"))
	}

	// Read the baseline up front so a bad path fails before the
	// (minutes-long at paper scale) measurement pass, not after.
	var prevRun *Run
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var prev Doc
		if err := json.Unmarshal(raw, &prev); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *baseline, err))
		}
		prevRun = prev.Current
	}

	run := &Run{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		// Record the resolved pool width, not the 0 sentinel, so the
		// perf record says what actually ran.
		Workers: aid.ResolveWorkers(*workers),
	}

	pipeline := aid.New(
		aid.WithCorpusSize(*successes, *failures),
		aid.WithWorkers(*workers),
	)
	for _, s := range aid.CaseStudies() {
		fmt.Fprintf(os.Stderr, "benchjson: Figure7/%s...\n", s.Name)
		name := "Figure7/" + s.Name
		var metrics map[string]float64
		fig, err := measure(*repeat, func() error {
			rep, err := pipeline.Run(context.Background(), aid.FromStudy(s))
			if err != nil {
				return err
			}
			m := map[string]float64{
				"discrim-preds":      float64(rep.Discriminative),
				"causal-path":        float64(rep.CausalPathLen),
				"AID-interventions":  float64(rep.AIDInterventions),
				"TAGT-interventions": float64(rep.TAGTInterventions),
				"TAGT-bound":         float64(rep.TAGTWorstCase),
			}
			checkMetrics(name, metrics, m)
			metrics = m
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fig.Name = name
		fig.Metrics = metrics
		run.Figures = append(run.Figures, fig)
	}

	for _, maxT := range aid.Figure8MaxTs() {
		fmt.Fprintf(os.Stderr, "benchjson: Figure8/MAXt=%d...\n", maxT)
		name := fmt.Sprintf("Figure8/MAXt=%d", maxT)
		var metrics map[string]float64
		fig, err := measure(*repeat, func() error {
			st, err := aid.RunSyntheticSweep(context.Background(), maxT, *instances, 1234,
				aid.SyntheticSweepOptions{Workers: *workers})
			if err != nil {
				return err
			}
			m := map[string]float64{"avg-preds": st.AvgPreds}
			for _, ap := range aid.Approaches() {
				c := st.Cells[ap]
				m[string(ap)+"-avg"] = c.Average
				m[string(ap)+"-worst"] = float64(c.WorstCase)
			}
			checkMetrics(name, metrics, m)
			metrics = m
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fig.Name = name
		fig.Metrics = metrics
		run.Figures = append(run.Figures, fig)
	}

	// Effect-analysis record: the pruning demo workload (a lost-update
	// race surrounded by provably-pure checksum/relay helpers) with the
	// static effect analysis off and on. The paired cells record the
	// intervention-round and predicate-count deltas pruning buys; the
	// wall-clock delta is the NsPerOp difference between them.
	for _, on := range []bool{false, true} {
		state := "off"
		if on {
			state = "on"
		}
		name := "Figure8/effects=" + state
		fmt.Fprintf(os.Stderr, "benchjson: %s...\n", name)
		var metrics map[string]float64
		fig, err := measure(*repeat, func() error {
			var pruned float64
			epipe := aid.New(
				aid.WithCorpusSize(*successes, *failures),
				aid.WithWorkers(*workers),
				aid.WithEffectAnalysis(on),
				aid.WithObserver(aid.ObserverFunc(func(e aid.Event) {
					if ev, ok := e.(aid.EffectsAnalyzed); ok {
						pruned = float64(ev.Pruned)
					}
				})),
			)
			rep, err := epipe.Run(context.Background(), aid.FromProgram(effects.PruningDemo(4, 6)))
			if err != nil {
				return err
			}
			m := map[string]float64{
				"total-preds":       float64(rep.TotalPredicates),
				"preds-pruned":      pruned,
				"AID-interventions": float64(rep.AIDInterventions),
			}
			checkMetrics(name, metrics, m)
			metrics = m
			return nil
		})
		if err != nil {
			fatal(err)
		}
		fig.Name = name
		fig.Metrics = metrics
		run.Figures = append(run.Figures, fig)
	}

	// Corpus-scaling record: rank + AC-DAG build over a 50k-execution ×
	// 2k-predicate synthetic corpus, columnar store vs the preserved
	// row-oriented oracle (outputs cross-checked equal inside the run).
	// NsPerOp and the allocation profile are the columnar phase's; the
	// row path's wall-clock and the speedup land in the metrics.
	{
		const scaleExecs, scalePreds = 50000, 2000
		name := fmt.Sprintf("CorpusScaling/%dx%d", scaleExecs, scalePreds)
		fmt.Fprintf(os.Stderr, "benchjson: %s...\n", name)
		passes := *repeat
		if passes < 1 {
			passes = 1 // mirror measure()'s clamp
		}
		var metrics map[string]float64
		var best *aid.CorpusScalingResult
		for r := 0; r < passes; r++ {
			res, err := aid.RunCorpusScaling(scaleExecs, scalePreds, 1)
			if err != nil {
				fatal(err)
			}
			m := map[string]float64{
				"fully-discriminative": float64(res.FullyDiscriminative),
				"dag-nodes":            float64(res.DAGNodes),
			}
			checkMetrics(name, metrics, m)
			metrics = m
			if best == nil || res.ColumnarNs < best.ColumnarNs {
				best = res
			}
		}
		metrics["row-ns"] = float64(best.RowNs)
		metrics["ingest-ns"] = float64(best.IngestNs)
		metrics["rank+build-speedup"] = best.Speedup
		run.Figures = append(run.Figures, Figure{
			Name:        name,
			NsPerOp:     best.ColumnarNs,
			AllocsPerOp: best.ColumnarAllocs,
			BytesPerOp:  best.ColumnarBytes,
			Metrics:     metrics,
		})
	}

	// Serve fairness record: a light tenant's p95 session latency alone
	// on the daemon versus under a flooding tenant that keeps a budget-4
	// daemon saturated. The session counts are deterministic and go
	// through the determinism check; the latencies are wall-clock and do
	// not, so they are recorded from the best pass (lowest p95 ratio,
	// the gated quantity — a pass can have a low loaded p95 and still a
	// high ratio when its unloaded baseline ran fast) — mirroring
	// CorpusScaling's row-ns. The best pass must stay within the 3x
	// fairness bound, the same gate BenchmarkServeConcurrentSessions
	// enforces per iteration.
	{
		const serveBudget, serveLight = 4, 20
		name := "Serve/fairness"
		fmt.Fprintf(os.Stderr, "benchjson: %s...\n", name)
		passes := *repeat
		if passes < 1 {
			passes = 1 // mirror measure()'s clamp
		}
		var metrics map[string]float64
		var best *service.FairnessResult
		var bestFig Figure
		for r := 0; r < passes; r++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			res, err := service.RunFairnessBench(context.Background(), serveBudget, serveLight)
			if err != nil {
				fatal(err)
			}
			ns := time.Since(start).Nanoseconds()
			runtime.ReadMemStats(&after)
			m := map[string]float64{
				"light-sessions": float64(res.LightSessions),
				"light-ok":       float64(res.LightOK),
			}
			checkMetrics(name, metrics, m)
			metrics = m
			if best == nil || res.Ratio < best.Ratio {
				best = res
				bestFig = Figure{
					NsPerOp:     ns,
					AllocsPerOp: int64(after.Mallocs - before.Mallocs),
					BytesPerOp:  int64(after.TotalAlloc - before.TotalAlloc),
				}
			}
		}
		if best.Ratio > 3 {
			fatal(fmt.Errorf("%s: fairness violated: loaded p95 %.2fx unloaded; bound is 3x", name, best.Ratio))
		}
		metrics["unloaded-p95-ns"] = float64(best.UnloadedP95Ns)
		metrics["loaded-p95-ns"] = float64(best.LoadedP95Ns)
		metrics["p95-ratio"] = best.Ratio
		metrics["flood-sessions"] = float64(best.FloodSessions)
		bestFig.Name = name
		bestFig.Metrics = metrics
		run.Figures = append(run.Figures, bestFig)
	}

	// Warm-session record: the daemon's steady-state serve path — a
	// repeat session against a warmed result cache (admission, cached
	// serve, event replay, report detach, terminal bookkeeping), the
	// per-session twin of BenchmarkServeSession. Costs are per session.
	{
		const warmSessions = 100
		name := "Serve/warm-session"
		fmt.Fprintf(os.Stderr, "benchjson: %s...\n", name)
		mgr := service.NewManager(service.Config{SessionBudget: 2, TenantCap: 8, ResultCacheCap: 4})
		spec := service.SessionSpec{Study: "npgsql", Successes: *successes, Failures: *failures}
		session := func() (service.SessionStatus, error) {
			s, err := mgr.Start("bench", spec)
			if err != nil {
				return service.SessionStatus{}, err
			}
			<-s.Done()
			if _, _, err := s.Report(); err != nil {
				return service.SessionStatus{}, err
			}
			return s.Status(), nil
		}
		if _, err := session(); err != nil { // populate the cache
			fatal(err)
		}
		var metrics map[string]float64
		fig, err := measure(*repeat, func() error {
			hits := 0
			for i := 0; i < warmSessions; i++ {
				st, err := session()
				if err != nil {
					return err
				}
				if st.ResultCacheHit {
					hits++
				}
			}
			m := map[string]float64{
				"sessions":          warmSessions,
				"result-cache-hits": float64(hits),
			}
			checkMetrics(name, metrics, m)
			metrics = m
			return nil
		})
		if err != nil {
			fatal(err)
		}
		mgr.Close()
		if metrics["result-cache-hits"] != warmSessions {
			fatal(fmt.Errorf("%s: only %.0f/%d sessions served from the result cache", name, metrics["result-cache-hits"], warmSessions))
		}
		fig.Name = name
		fig.NsPerOp /= warmSessions
		fig.AllocsPerOp /= warmSessions
		fig.BytesPerOp /= warmSessions
		fig.Metrics = metrics
		run.Figures = append(run.Figures, fig)
	}

	doc := &Doc{Baseline: prevRun, Current: run}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s (%d figures)\n", *out, len(run.Figures))

	if *check {
		violations, warnings := checkRegressions(prevRun, run, *tolerance)
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "benchjson: warning:", w)
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchjson: regression:", v)
		}
		if len(violations) > 0 {
			fatal(fmt.Errorf("%d allocation regression(s) against %s", len(violations), *baseline))
		}
		fmt.Fprintf(os.Stderr, "benchjson: check passed: %d baseline figures within tolerance\n", len(prevRun.Figures))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
