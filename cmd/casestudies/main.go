// Command casestudies regenerates the paper's Fig. 7: one row per case
// study with the statistical-debugging predicate count, the causal path
// length, and the intervention counts for AID versus TAGT, all via the
// public aid facade.
//
// Usage:
//
//	casestudies [-successes 50] [-failures 50] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"aid"
)

func main() {
	var (
		successes = flag.Int("successes", 50, "successful executions per study")
		failures  = flag.Int("failures", 50, "failed executions per study")
		seed      = flag.Int64("seed", 1, "algorithm seed")
		replays   = flag.Int("replays", 5, "re-executions per intervention round")
		workers   = flag.Int("workers", 0, "execution-pool width (0 = GOMAXPROCS); output is identical for any width")
	)
	flag.Parse()

	pipeline := aid.New(
		aid.WithCorpusSize(*successes, *failures),
		aid.WithSeedCap(20000),
		aid.WithReplays(*replays),
		aid.WithSeed(*seed),
		aid.WithWorkers(*workers),
	)
	ctx := context.Background()
	var reports []*aid.Report
	for _, s := range aid.CaseStudies() {
		fmt.Fprintf(os.Stderr, "running %s...\n", s.Name)
		rep, err := pipeline.Run(ctx, aid.FromStudy(s))
		if err != nil {
			fmt.Fprintln(os.Stderr, "casestudies:", err)
			os.Exit(1)
		}
		reports = append(reports, rep)
	}
	fmt.Println("Figure 7 — case studies of real-world applications (reproduced):")
	fmt.Println()
	fmt.Print(aid.FormatFigure7(reports))
	fmt.Println()
	fmt.Println("Root causes and explanations:")
	for _, rep := range reports {
		fmt.Printf("\n%s (%s): root cause %s\n", rep.Study, rep.Issue, rep.RootCause)
		fmt.Print(rep.FormatExplanation())
	}
}
