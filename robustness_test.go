package aid_test

import (
	"context"
	"strings"
	"testing"

	"aid"
)

// TestPipelineNoiseToleranceMatchesDeterministic checks the
// noise-tolerant facade path on the deterministic simulator: with the
// floor at 1 every round needs exactly one trial, so the discovered
// cause, path, and round log must match the plain pipeline — and the
// report must carry the robustness accounting the plain run omits.
func TestPipelineNoiseToleranceMatchesDeterministic(t *testing.T) {
	ctx := context.Background()
	study := aid.FromStudy(aid.CaseStudyByName("network"))

	plain, err := aid.New(aid.WithCorpusSize(20, 20)).Run(ctx, study)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Robustness != nil {
		t.Fatal("deterministic run must not carry a robustness report")
	}

	robust, err := aid.New(
		aid.WithCorpusSize(20, 20),
		aid.WithNoiseTolerance(aid.NoiseTolerance{ManifestFloor: 1}),
	).Run(ctx, study)
	if err != nil {
		t.Fatal(err)
	}
	if robust.RootCause != plain.RootCause {
		t.Fatalf("root cause %q differs from deterministic %q", robust.RootCause, plain.RootCause)
	}
	if len(robust.Rounds) != len(plain.Rounds) {
		t.Fatalf("%d rounds under noise tolerance, %d deterministic", len(robust.Rounds), len(plain.Rounds))
	}
	rb := robust.Robustness
	if rb == nil {
		t.Fatal("noise-tolerant run must carry a robustness report")
	}
	if rb.Trials == 0 {
		t.Fatalf("robustness report empty: %+v", rb)
	}
	if rb.CauseConfidence != 1 {
		t.Fatalf("cause confidence %v on a deterministic oracle, want 1", rb.CauseConfidence)
	}
	if rb.Contradictions != 0 || rb.RecoveredPanics != 0 || len(rb.Quarantined) != 0 {
		t.Fatalf("deterministic oracle produced faults: %+v", rb)
	}
	if !strings.Contains(robust.FormatRobustness(), "trial oracle") {
		t.Fatalf("FormatRobustness output unexpected:\n%s", robust.FormatRobustness())
	}
}

// TestPipelineNoiseToleranceRoundEvents checks RoundDone events carry
// the trial provenance in noise-tolerant mode.
func TestPipelineNoiseToleranceRoundEvents(t *testing.T) {
	var rounds []aid.RoundDone
	obs := aid.ObserverFunc(func(e aid.Event) {
		if rd, ok := e.(aid.RoundDone); ok {
			rounds = append(rounds, rd)
		}
	})
	_, err := aid.New(
		aid.WithCorpusSize(20, 20),
		aid.WithObserver(obs),
		aid.WithNoiseTolerance(aid.NoiseTolerance{ManifestFloor: 1}),
	).Run(context.Background(), aid.FromStudy(aid.CaseStudyByName("network")))
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("no RoundDone events")
	}
	fresh := 0
	for _, rd := range rounds {
		if rd.CacheHit {
			continue
		}
		fresh++
		if rd.Trials == 0 || rd.Confidence == 0 {
			t.Fatalf("fresh round without trial provenance: %+v", rd)
		}
		if !strings.Contains(rd.String(), "trials") {
			t.Fatalf("round line lacks trial suffix: %s", rd)
		}
	}
	if fresh == 0 {
		t.Fatal("every round was a cache hit; fixture broken")
	}
}
