package aid_test

import (
	"bytes"
	"context"
	"testing"

	"aid"
	"aid/internal/effects"
)

// runWithEffects runs a 30/30 pipeline over src and returns the report
// plus the EffectsAnalyzed event (zero value when the stage is off).
func runWithEffects(t *testing.T, src aid.TraceSource, on bool, extra ...aid.Option) (*aid.Report, aid.EffectsAnalyzed) {
	t.Helper()
	var ea aid.EffectsAnalyzed
	opts := append([]aid.Option{
		aid.WithCorpusSize(30, 30),
		aid.WithEffectAnalysis(on),
		aid.WithObserver(aid.ObserverFunc(func(e aid.Event) {
			if v, ok := e.(aid.EffectsAnalyzed); ok {
				ea = v
			}
		})),
	}, extra...)
	rep, err := aid.New(opts...).Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	return rep, ea
}

func reportJSON(t *testing.T, rep *aid.Report) []byte {
	t.Helper()
	j, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// TestEffectAnalysisOffByteIdentity pins the default: with the option
// off (explicitly or by default) the pipeline's output is byte-identical
// to a pipeline that never heard of effect analysis.
func TestEffectAnalysisOffByteIdentity(t *testing.T) {
	ctx := context.Background()
	study := aid.CaseStudyByName("npgsql")
	base, err := aid.New(aid.WithCorpusSize(30, 30)).Run(ctx, aid.FromStudy(study))
	if err != nil {
		t.Fatal(err)
	}
	off, ea := runWithEffects(t, aid.FromStudy(study), false)
	if !bytes.Equal(reportJSON(t, base), reportJSON(t, off)) {
		t.Error("WithEffectAnalysis(false) changed the report")
	}
	if ea != (aid.EffectsAnalyzed{}) {
		t.Errorf("effects stage emitted %+v with the option off", ea)
	}
}

// TestEffectAnalysisNoOpStudies: for studies where the derived
// side-effect-free set adds nothing beyond the hand annotations that
// matter to the DAG, turning the analysis on is a complete no-op —
// byte-identical reports. (The other studies gain extra safe
// candidates; TestEffectAnalysisPreservesRootCause covers them.)
func TestEffectAnalysisNoOpStudies(t *testing.T) {
	for _, name := range []string{"npgsql", "cosmosdb", "healthtelemetry"} {
		study := aid.CaseStudyByName(name)
		off, _ := runWithEffects(t, aid.FromStudy(study), false)
		on, ea := runWithEffects(t, aid.FromStudy(study), true)
		if !bytes.Equal(reportJSON(t, off), reportJSON(t, on)) {
			t.Errorf("%s: effects-on report differs from effects-off", name)
		}
		if ea.Pruned != 0 || ea.Contradicted != 0 {
			t.Errorf("%s: event %+v, want zero pruned and zero contradictions", name, ea)
		}
	}
}

// TestEffectAnalysisPreservesRootCause: across every case study,
// enabling the analysis never prunes a study predicate (their annotated
// functions all observe shared state), never contradicts a hand
// annotation, and never changes the confirmed root cause or its causal
// path length.
func TestEffectAnalysisPreservesRootCause(t *testing.T) {
	for _, study := range aid.CaseStudies() {
		study := study
		t.Run(study.Name, func(t *testing.T) {
			t.Parallel()
			off, _ := runWithEffects(t, aid.FromStudy(study), false)
			on, ea := runWithEffects(t, aid.FromStudy(study), true)
			if ea.Functions == 0 {
				t.Fatal("no EffectsAnalyzed event observed")
			}
			if ea.Pruned != 0 {
				t.Errorf("pruned %d predicates; the studies have no prunable regions", ea.Pruned)
			}
			if ea.Contradicted != 0 {
				t.Errorf("%d hand annotations contradicted", ea.Contradicted)
			}
			if on.TotalPredicates != off.TotalPredicates {
				t.Errorf("TotalPredicates %d with effects on, %d off", on.TotalPredicates, off.TotalPredicates)
			}
			if on.RootCause != off.RootCause {
				t.Errorf("root cause changed: %q with effects on, %q off", on.RootCause, off.RootCause)
			}
			// Widening the side-effect-free set can only admit more safe
			// candidates into the DAG, so the causal explanation may grow
			// but never lose nodes.
			if on.CausalPathLen < off.CausalPathLen {
				t.Errorf("causal path shrank: %d with effects on, %d off", on.CausalPathLen, off.CausalPathLen)
			}
		})
	}
}

// TestEffectPruningDemo exercises the pruning path end to end on the
// demo workload (a lost-update race surrounded by pure checksum and
// relay helpers): with the analysis on, every helper-anchored predicate
// is dropped before ranking, discovery confirms the same root cause,
// and the intervention budget shrinks.
func TestEffectPruningDemo(t *testing.T) {
	const wantCause = "race:WriterA|WriterB@counter"
	off, _ := runWithEffects(t, aid.FromProgram(effects.PruningDemo(4, 6)), false)
	on, ea := runWithEffects(t, aid.FromProgram(effects.PruningDemo(4, 6)), true)

	if off.RootCause != wantCause || on.RootCause != wantCause {
		t.Fatalf("root cause off=%q on=%q, want %q", off.RootCause, on.RootCause, wantCause)
	}
	if ea.Pruned == 0 {
		t.Fatal("no predicates pruned on the demo workload")
	}
	if ea.Contradicted != 0 {
		t.Errorf("%d hand annotations contradicted", ea.Contradicted)
	}
	// 4 checksums (pure) + 6 relays (param-pure) out of 13 functions.
	if ea.Prunable != 10 {
		t.Errorf("Prunable = %d, want 10", ea.Prunable)
	}
	if on.TotalPredicates != off.TotalPredicates-ea.Pruned {
		t.Errorf("TotalPredicates %d with effects on, want %d - %d pruned = %d",
			on.TotalPredicates, off.TotalPredicates, ea.Pruned, off.TotalPredicates-ea.Pruned)
	}
	if on.AIDInterventions >= off.AIDInterventions {
		t.Errorf("AID interventions %d with pruning on, %d off; pruning should shrink the budget",
			on.AIDInterventions, off.AIDInterventions)
	}
}

// TestEffectPruningStreamingMatchesBatch: the streaming extraction path
// applies the same pruning, so streaming and batch runs with the
// analysis on produce byte-identical reports.
func TestEffectPruningStreamingMatchesBatch(t *testing.T) {
	batch, _ := runWithEffects(t, aid.FromProgram(effects.PruningDemo(4, 6)), true)
	stream, ea := runWithEffects(t, aid.FromProgram(effects.PruningDemo(4, 6)), true,
		aid.WithStreamingExtract(true))
	if !bytes.Equal(reportJSON(t, batch), reportJSON(t, stream)) {
		t.Error("streaming report differs from batch with effect analysis on")
	}
	if ea.Pruned == 0 {
		t.Error("streaming path pruned nothing")
	}
}
