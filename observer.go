package aid

import "fmt"

// Observer receives typed progress events while a Pipeline runs. It
// replaces ad-hoc printing: the CLI's -rounds log, the examples'
// progress lines, and a future service's streaming endpoints are all
// observers over the same event stream.
//
// Events are emitted synchronously from the pipeline goroutine in
// deterministic order; an observer must not block for long and must not
// mutate pipeline state. A nil observer is silently ignored.
type Observer interface {
	OnEvent(e Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(e Event)

// OnEvent calls f.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// Observers fans one event stream out to several observers in order.
// Events are delivered by value and shared immutably: the pipeline
// detaches an event's slice-valued state from its own mutable
// bookkeeping once at emission — not once per subscriber — so a
// subscriber may retain events indefinitely, and appending to a
// retained event's slices cannot corrupt the pipeline's round log or
// a sibling's view. The flip side of sharing one clone is that
// subscribers must treat received slices as read-only: an in-place
// element write would be visible to the other subscribers. Nil
// entries are skipped.
type Observers []Observer

// OnEvent delivers e to each observer in order.
func (os Observers) OnEvent(e Event) {
	for _, o := range os {
		if o != nil {
			o.OnEvent(e)
		}
	}
}

// Event is a typed pipeline progress event. The concrete types are
// CollectProgress, TracesCollected, EffectsAnalyzed,
// PredicatesExtracted, Ranked, DAGBuilt, RoundDone,
// ContradictionDetected, SchedulerUsage, CauseConfirmed,
// DiscoveryDone, and StateRecovered.
type Event interface {
	// String renders the event as a one-line log message.
	String() string
	event()
}

// CollectProgress reports the running totals of a collection sweep
// after each seed chunk.
type CollectProgress struct {
	// Successes and Failures are the counts gathered so far.
	Successes, Failures int
	// SeedsSwept is the highest scheduler seed swept so far.
	SeedsSwept int64
}

func (e CollectProgress) String() string {
	return fmt.Sprintf("collect: %d successes, %d failures after %d seeds",
		e.Successes, e.Failures, e.SeedsSwept)
}

// TracesCollected reports a completed collection stage.
type TracesCollected struct {
	// Source labels the trace source.
	Source string
	// Successes and Failures are the corpus counts.
	Successes, Failures int
}

func (e TracesCollected) String() string {
	return fmt.Sprintf("collected from %s: %d successes, %d failures",
		e.Source, e.Successes, e.Failures)
}

// EffectsAnalyzed reports the static effect-analysis stage
// (WithEffectAnalysis): the purity classification of the source's
// program and what effect-guided pruning removed from the corpus.
type EffectsAnalyzed struct {
	// Functions counts the analyzed functions.
	Functions int
	// SideEffectFree counts functions the analysis derives
	// side-effect-free (no transitive shared-state write).
	SideEffectFree int
	// Prunable counts functions at or below the pruning purity bar
	// (deterministic over at most caller-local state).
	Prunable int
	// Pruned counts predicates dropped from the corpus because every
	// anchor method was prunable.
	Pruned int
	// Contradicted counts hand SideEffectFree annotations the analysis
	// refutes (the annotation says safe, the effects say shared-state
	// write).
	Contradicted int
}

func (e EffectsAnalyzed) String() string {
	s := fmt.Sprintf("effect analysis: %d/%d functions side-effect-free (%d prunable), %d predicates pruned",
		e.SideEffectFree, e.Functions, e.Prunable, e.Pruned)
	if e.Contradicted > 0 {
		s += fmt.Sprintf("; %d hand annotations contradicted", e.Contradicted)
	}
	return s
}

// PredicatesExtracted reports a completed extraction stage.
type PredicatesExtracted struct {
	// Total counts every predicate extraction produced (including
	// materialized compounds).
	Total int
}

func (e PredicatesExtracted) String() string {
	return fmt.Sprintf("extracted %d predicates", e.Total)
}

// Ranked reports the statistical-debugging stage. In streaming mode
// (Pipeline.ExtractStream, cmd/aid -stream) it fires incrementally as
// execution rows are ingested — the columnar corpus maintains scores on
// ingest, so each event reads live counts; RowsIngested/RowsTotal track
// progress. The batch path emits one final event with both fields zero.
type Ranked struct {
	// FullyDiscriminative counts the predicates SD keeps at this point.
	FullyDiscriminative int
	// RowsIngested and RowsTotal report streaming-ingest progress
	// (zero outside streaming mode).
	RowsIngested, RowsTotal int
}

func (e Ranked) String() string {
	if e.RowsTotal > 0 {
		return fmt.Sprintf("statistical debugging: %d fully-discriminative after %d/%d executions",
			e.FullyDiscriminative, e.RowsIngested, e.RowsTotal)
	}
	return fmt.Sprintf("statistical debugging kept %d fully-discriminative predicates",
		e.FullyDiscriminative)
}

// DAGBuilt reports a constructed AC-DAG.
type DAGBuilt struct {
	// Nodes counts the safely-intervenable candidates plus F.
	Nodes int
	// Unsafe counts predicates excluded for lacking a safe intervention.
	Unsafe int
}

func (e DAGBuilt) String() string {
	return fmt.Sprintf("AC-DAG built: %d nodes (%d predicates excluded as unsafe)",
		e.Nodes, e.Unsafe)
}

// RoundDone reports one completed intervention round, including what it
// pruned and how the scheduler produced its outcome. The confirmed
// cause, if any, follows as a CauseConfirmed event.
type RoundDone struct {
	// Index is the 1-based round number.
	Index int
	// Round is the round's log entry.
	Round Round
	// Batch is the scheduler execution batch that produced the round's
	// outcome; rounds sharing a batch had their replay bundles executed
	// concurrently as one logical round.
	Batch int
	// CacheHit reports the outcome was served from the scheduler's memo
	// cache (or an in-flight prefetch) without starting new replays.
	CacheHit bool
	// Speculative reports the outcome was produced by a
	// continuation-hint prefetch rather than a direct request.
	Speculative bool
	// Trials and Retries report the adaptive trial oracle's cost for
	// the round (zero outside noise-tolerant mode; see
	// WithNoiseTolerance).
	Trials, Retries int
	// Confidence is the round verdict's posterior under the configured
	// noise bounds (zero outside noise-tolerant mode).
	Confidence float64
	// Contradiction reports the round's outcome initially contradicted
	// a recorded verdict and went through escalated repair.
	Contradiction bool
}

func (e RoundDone) String() string {
	verdict := "failure persisted"
	if e.Round.Stopped {
		verdict = "failure stopped"
	}
	suffix := ""
	if e.CacheHit {
		suffix = " [cached]"
	}
	if e.Trials > 0 {
		suffix += fmt.Sprintf(" [%d trials, conf %.3f", e.Trials, e.Confidence)
		if e.Retries > 0 {
			suffix += fmt.Sprintf(", %d retries", e.Retries)
		}
		if e.Contradiction {
			suffix += ", repaired contradiction"
		}
		suffix += "]"
	}
	return fmt.Sprintf("round %d [%s, batch %d]: intervened on %d predicates -> %s (%d pruned)%s",
		e.Index, e.Round.Phase, e.Batch, len(e.Round.Intervened), verdict, len(e.Round.Pruned), suffix)
}

// ContradictionDetected reports the robust scheduler caught a
// monotonicity violation between two round verdicts — intervening on a
// subset stopped the failure while a superset let it persist — and ran
// escalated retests to repair it. Emitted only in noise-tolerant mode.
type ContradictionDetected struct {
	// Stopped is the subset group whose verdict was "failure stopped";
	// Persisted is the superset whose verdict was "failure persisted".
	Stopped, Persisted []PredicateID
	// Resolved reports the escalated retests restored consistency; when
	// false the persisted verdict was trusted and the stopped verdict
	// discarded.
	Resolved bool
}

func (e ContradictionDetected) String() string {
	state := "repaired"
	if !e.Resolved {
		state = "unresolved; trusting persisted side"
	}
	return fmt.Sprintf("contradiction: stopped(%d preds) ⊆ persisted(%d preds) — %s",
		len(e.Stopped), len(e.Persisted), state)
}

// SchedulerUsage reports how much of a run's intervention work the
// attached SharedScheduler served from its cross-run memo. Emitted once
// per run that uses WithSharedScheduler, after the last round and
// before DiscoveryDone, while the run still holds the scheduler's
// discovery slot — so the counts are exactly this run's, never folded
// with a sibling run sharing the same memo.
type SchedulerUsage struct {
	// Requests counts the run's outcome requests; CacheHits how many
	// were served from the shared memo without new replays; Executions
	// how many replay bundles the run actually started.
	Requests, CacheHits, Executions int
}

func (e SchedulerUsage) String() string {
	return fmt.Sprintf("shared scheduler: %d/%d requests served from memo (%d executed)",
		e.CacheHits, e.Requests, e.Executions)
}

// CauseConfirmed reports a predicate confirmed causal.
type CauseConfirmed struct {
	// ID is the confirmed predicate.
	ID PredicateID
}

func (e CauseConfirmed) String() string {
	return fmt.Sprintf("confirmed cause: %s", e.ID)
}

// DiscoveryDone reports a completed discovery phase.
type DiscoveryDone struct {
	// RootCause is C0 ("" when no cause was confirmed).
	RootCause PredicateID
	// PathLen is the causal path length excluding F.
	PathLen int
	// Interventions is the number of rounds spent.
	Interventions int
}

func (e DiscoveryDone) String() string {
	return fmt.Sprintf("discovery done: root cause %s, %d-predicate path, %d interventions",
		e.RootCause, e.PathLen, e.Interventions)
}

// StateRecovered reports what the daemon restored from its persistence
// directory at startup (aid serve -persist). Emitted once, before any
// session runs. Recovery follows warm-start degradation: corruption is
// counted and dropped, never fatal, so RecordsDropped > 0 (or ColdStart)
// means lost cache warmth, not lost correctness.
type StateRecovered struct {
	// Corpora counts tenant corpora found intact in the store.
	Corpora int
	// Memos counts persisted memo snapshots restored; MemoEntries the
	// individual intervention outcomes they carried.
	Memos, MemoEntries int
	// RecordsKept and RecordsDropped are the durable log's recovery
	// counts: records read intact vs. lost to a torn tail or corruption.
	RecordsKept, RecordsDropped int
	// Invalidated counts memo records discarded because the corpus they
	// were derived over changed (fingerprint mismatch) or vanished —
	// persisted answers are never trusted stale.
	Invalidated int
	// ColdStart reports the cache was unusable (unrecognized or corrupt
	// beyond its header) and the daemon started from empty state.
	ColdStart bool
}

func (e StateRecovered) String() string {
	if e.ColdStart {
		return fmt.Sprintf("state recovered: cold start (%d records dropped)", e.RecordsDropped)
	}
	s := fmt.Sprintf("state recovered: %d corpora, %d memos (%d outcomes) from %d records",
		e.Corpora, e.Memos, e.MemoEntries, e.RecordsKept)
	if e.RecordsDropped > 0 {
		s += fmt.Sprintf(", %d records dropped", e.RecordsDropped)
	}
	if e.Invalidated > 0 {
		s += fmt.Sprintf(", %d invalidated", e.Invalidated)
	}
	return s
}

func (CollectProgress) event()       {}
func (TracesCollected) event()       {}
func (EffectsAnalyzed) event()       {}
func (PredicatesExtracted) event()   {}
func (Ranked) event()                {}
func (DAGBuilt) event()              {}
func (RoundDone) event()             {}
func (ContradictionDetected) event() {}
func (SchedulerUsage) event()        {}
func (CauseConfirmed) event()        {}
func (DiscoveryDone) event()         {}
func (StateRecovered) event()        {}
