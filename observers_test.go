package aid_test

import (
	"bytes"
	"context"
	"testing"

	"aid"
)

// TestObserversFanOutIsolation pins the clone-once event contract: a
// subscriber that appends to a retained RoundDone's slices — the easy
// accidental mutation, since append looks value-like — must corrupt
// neither the pipeline's own round log (the report, whose backing the
// discovery loop keeps appending to after emission) nor what sibling
// subscribers saw. In-place element writes are excluded by contract:
// events share one clone, so received slices are read-only.
func TestObserversFanOutIsolation(t *testing.T) {
	ctx := context.Background()
	study := aid.CaseStudies()[0]
	opts := []aid.Option{aid.WithCorpusSize(20, 20), aid.WithReplays(3)}

	clean, err := aid.New(opts...).Run(ctx, aid.FromStudy(study))
	if err != nil {
		t.Fatal(err)
	}
	cleanJS, err := clean.JSON()
	if err != nil {
		t.Fatal(err)
	}

	// witness records what a well-behaved subscriber saw; hostile
	// scribbles over every slice it receives. Order matters: hostile
	// runs first, so any sharing would corrupt witness's view too.
	var witness []string
	// hostile buffers rounds and post-processes them when discovery
	// ends — the pattern the emission-time clone exists for: without
	// it, a retained event's slices alias the discovery log's own
	// entries (which branch pruning keeps appending to after the event
	// fires), and a subscriber append could land inside the log's
	// backing whenever the shared array had spare capacity.
	var retained []aid.RoundDone
	hostile := aid.ObserverFunc(func(e aid.Event) {
		switch rd := e.(type) {
		case aid.RoundDone:
			rd.Round.Intervened = append(rd.Round.Intervened, "injected")
			rd.Round.Intervened[len(rd.Round.Intervened)-1] = "clobbered"
			retained = append(retained, rd)
		case aid.DiscoveryDone:
			for _, rd := range retained {
				rd.Round.Pruned = append(rd.Round.Pruned, "injected")
				rd.Round.Pruned[len(rd.Round.Pruned)-1] = "clobbered"
			}
		}
	})
	recorder := aid.ObserverFunc(func(e aid.Event) {
		if rd, ok := e.(aid.RoundDone); ok {
			for _, id := range rd.Round.Intervened {
				witness = append(witness, string(id))
			}
		}
	})
	dirty, err := aid.New(append(opts,
		aid.WithObserver(aid.Observers{hostile, nil, recorder}))...).
		Run(ctx, aid.FromStudy(study))
	if err != nil {
		t.Fatal(err)
	}
	dirtyJS, err := dirty.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cleanJS, dirtyJS) {
		t.Fatal("hostile subscriber changed the report")
	}
	for _, w := range witness {
		if w == "clobbered" || w == "injected" {
			t.Fatal("hostile subscriber's mutations leaked to a sibling observer")
		}
	}
	if len(witness) == 0 {
		t.Fatal("recorder observer saw no rounds")
	}
	var sum int
	for _, rd := range clean.Rounds {
		sum += len(rd.Intervened)
	}
	if len(witness) != sum {
		t.Fatalf("recorder saw %d intervened predicates, report has %d", len(witness), sum)
	}
}
