module aid

go 1.24
