// Package aid is a Go reproduction of "Causality-Guided Adaptive
// Interventional Debugging" (Fariha, Nath, Meliou — SIGMOD 2020).
//
// AID localizes the root cause of an application's intermittent failure
// and explains how it propagates: it extracts runtime predicates from
// execution traces, keeps the fully-discriminative ones (statistical
// debugging), over-approximates their causality with a
// temporal-precedence DAG, and then prunes that DAG with
// causality-guided group interventions (fault injection) until only the
// true causal path from root cause to failure remains.
//
// The root package is the public facade: a Pipeline built with
// functional options whose stages (Collect, Extract, Rank, BuildDAG,
// Discover, Explain) are individually callable and composable
// end-to-end via Run. Inputs arrive through the TraceSource interface —
// FromStudy (the paper's six case studies), FromProgram (a seed sweep
// over any simulated program), or FromTraceFile (an offline JSON-lines
// corpus round-tripping WriteTraces). Every stage honors its
// context.Context and aborts within one task-drain when cancelled;
// WithObserver streams typed per-phase progress events; Run returns the
// JSON-serializable Report shared by the CLI, the examples, and future
// service endpoints. See the package example for the complete loop.
//
// The algorithms live under internal/:
//
//	trace      execution-trace model (spans, accesses, logical clocks)
//	sim        deterministic concurrency simulator + fault injection
//	par        shared worker-pool engine (deterministic ordered fan-out)
//	predicate  predicate vocabulary and extraction from traces
//	statdebug  statistical debugging (precision/recall, SD baseline)
//	acdag      the approximate causal DAG (AC-DAG) of §4
//	core       Algorithms 1–3: GIWP, Branch-Prune, Causal-Path-Discovery
//	grouptest  the TAGT baseline
//	inject     predicate repairs → simulator injection plans
//	theory     §6 bounds and search-space analysis
//	synthetic  the Fig. 8 synthetic benchmark
//	casestudy  the six Fig. 7 case studies
//
// See README.md for a guided tour, DESIGN.md for the system inventory
// and the cancellation/determinism contracts, and EXPERIMENTS.md for
// the paper-versus-measured comparison. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation through
// the public facade.
package aid
