package aid_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aid"
)

// TestTraceFileRoundTrip pins the offline-debugging loop: a corpus
// saved with WriteTraces and reloaded through FromTraceFile yields a
// report byte-identical to the live pipeline's.
func TestTraceFileRoundTrip(t *testing.T) {
	ctx := context.Background()
	study := aid.CaseStudyByName("buildandtest")
	pipeline := aid.New(aid.WithCorpusSize(20, 20))

	live, err := pipeline.Run(ctx, aid.FromStudy(study))
	if err != nil {
		t.Fatal(err)
	}

	traces, err := pipeline.Collect(ctx, aid.FromStudy(study))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	if err := aid.WriteTraces(path, traces); err != nil {
		t.Fatal(err)
	}

	offline, err := pipeline.Run(ctx, aid.FromTraceFile(path).ForStudy(study))
	if err != nil {
		t.Fatal(err)
	}
	// The offline report's Study field names the file, not the study;
	// normalize the labels before comparing.
	offline.Study, offline.Issue, offline.Description = live.Study, live.Issue, live.Description

	liveJSON, err := live.JSON()
	if err != nil {
		t.Fatal(err)
	}
	offlineJSON, err := offline.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, offlineJSON) {
		t.Errorf("offline report differs from live report:\n--- live\n%s\n--- offline\n%s", liveJSON, offlineJSON)
	}
}

// TestTraceFileWithoutProgram checks the early stages work on a purely
// offline corpus and Discover fails with a clear error.
func TestTraceFileWithoutProgram(t *testing.T) {
	ctx := context.Background()
	study := aid.CaseStudyByName("network")
	pipeline := aid.New(aid.WithCorpusSize(10, 10))
	traces, err := pipeline.Collect(ctx, aid.FromStudy(study))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	if err := aid.WriteTraces(path, traces); err != nil {
		t.Fatal(err)
	}

	src := aid.FromTraceFile(path)
	loaded, err := pipeline.Collect(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	succ, fail := loaded.Set.Counts()
	if succ != 10 || fail != 10 {
		t.Fatalf("reloaded %d/%d executions, want 10/10", succ, fail)
	}
	corpus := pipeline.Extract(loaded)
	ranking := pipeline.Rank(corpus)
	dag, _, err := pipeline.BuildDAG(corpus, ranking.Fully)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.Discover(ctx, loaded, corpus, dag); err == nil {
		t.Fatal("Discover succeeded without a program")
	}
}

// TestWriteTracesRejectsEmpty checks the nil guards.
func TestWriteTracesRejectsEmpty(t *testing.T) {
	if err := aid.WriteTraces(filepath.Join(t.TempDir(), "x.jsonl"), nil); err == nil {
		t.Fatal("WriteTraces(nil) succeeded")
	}
	if err := aid.WriteTraces(filepath.Join(t.TempDir(), "x.jsonl"), &aid.Traces{}); err == nil {
		t.Fatal("WriteTraces(empty) succeeded")
	}
}

// TestTraceFileBadInputDiagnostics table-tests FromTraceFile over bad
// corpora: an empty, truncated, or non-JSON-lines file must fail at
// collection time with an error naming the file (and line, for parse
// errors) — never surface as a zero-trace failure or a panic deeper in
// the pipeline.
func TestTraceFileBadInputDiagnostics(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	valid := `{"id":"a","outcome":1}`
	cases := []struct {
		name     string
		content  string
		wantLine string // additional substring beyond the file name
	}{
		{"empty file", "", ""},
		{"whitespace only", "\n\n  \n", ""},
		{"non-JSON-lines", "this is not a trace corpus\n", ":1"},
		{"truncated record", valid + "\n" + `{"id":"b","outco`, ":2"},
		{"binary garbage", "\x00\x01\x02\xff\n", ":1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "_")+".jsonl")
			if err := os.WriteFile(path, []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := aid.New().Run(ctx, aid.FromTraceFile(path))
			if err == nil {
				t.Fatal("pipeline over bad corpus succeeded")
			}
			if !strings.Contains(err.Error(), path) {
				t.Fatalf("error %q does not name the file %q", err, path)
			}
			if tc.wantLine != "" && !strings.Contains(err.Error(), path+tc.wantLine) {
				t.Fatalf("error %q does not name the line (%q)", err, path+tc.wantLine)
			}
		})
	}
}
