package aid_test

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"aid"
)

// TestTraceFileRoundTrip pins the offline-debugging loop: a corpus
// saved with WriteTraces and reloaded through FromTraceFile yields a
// report byte-identical to the live pipeline's.
func TestTraceFileRoundTrip(t *testing.T) {
	ctx := context.Background()
	study := aid.CaseStudyByName("buildandtest")
	pipeline := aid.New(aid.WithCorpusSize(20, 20))

	live, err := pipeline.Run(ctx, aid.FromStudy(study))
	if err != nil {
		t.Fatal(err)
	}

	traces, err := pipeline.Collect(ctx, aid.FromStudy(study))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	if err := aid.WriteTraces(path, traces); err != nil {
		t.Fatal(err)
	}

	offline, err := pipeline.Run(ctx, aid.FromTraceFile(path).ForStudy(study))
	if err != nil {
		t.Fatal(err)
	}
	// The offline report's Study field names the file, not the study;
	// normalize the labels before comparing.
	offline.Study, offline.Issue, offline.Description = live.Study, live.Issue, live.Description

	liveJSON, err := live.JSON()
	if err != nil {
		t.Fatal(err)
	}
	offlineJSON, err := offline.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, offlineJSON) {
		t.Errorf("offline report differs from live report:\n--- live\n%s\n--- offline\n%s", liveJSON, offlineJSON)
	}
}

// TestTraceFileWithoutProgram checks the early stages work on a purely
// offline corpus and Discover fails with a clear error.
func TestTraceFileWithoutProgram(t *testing.T) {
	ctx := context.Background()
	study := aid.CaseStudyByName("network")
	pipeline := aid.New(aid.WithCorpusSize(10, 10))
	traces, err := pipeline.Collect(ctx, aid.FromStudy(study))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "traces.jsonl")
	if err := aid.WriteTraces(path, traces); err != nil {
		t.Fatal(err)
	}

	src := aid.FromTraceFile(path)
	loaded, err := pipeline.Collect(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	succ, fail := loaded.Set.Counts()
	if succ != 10 || fail != 10 {
		t.Fatalf("reloaded %d/%d executions, want 10/10", succ, fail)
	}
	corpus := pipeline.Extract(loaded)
	ranking := pipeline.Rank(corpus)
	dag, _, err := pipeline.BuildDAG(corpus, ranking.Fully)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.Discover(ctx, loaded, corpus, dag); err == nil {
		t.Fatal("Discover succeeded without a program")
	}
}

// TestWriteTracesRejectsEmpty checks the nil guards.
func TestWriteTracesRejectsEmpty(t *testing.T) {
	if err := aid.WriteTraces(filepath.Join(t.TempDir(), "x.jsonl"), nil); err == nil {
		t.Fatal("WriteTraces(nil) succeeded")
	}
	if err := aid.WriteTraces(filepath.Join(t.TempDir(), "x.jsonl"), &aid.Traces{}); err == nil {
		t.Fatal("WriteTraces(empty) succeeded")
	}
}
