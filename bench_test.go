// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§7) plus the analytical artifacts of §6.
//
//	go test -bench=Figure7 .     # Fig. 7: the six case studies
//	go test -bench=Figure8 .     # Fig. 8: the synthetic MAXt sweep
//	go test -bench=Figure6 .     # Fig. 6: bounds on the symmetric AC-DAG
//	go test -bench=Example3 .    # Example 3: search-space comparison
//
// Each benchmark reports the paper's quantities as custom metrics
// (interventions/op, predicates/op, ...), so `-bench` output doubles as
// the reproduction tables; absolute wall-clock numbers measure the
// harness itself.
package aid_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"aid"
	"aid/internal/theory"
)

// benchOpts is a trimmed corpus size so a full Fig. 7 row stays fast
// enough to iterate; cmd/casestudies runs the paper-scale 50+50 corpus.
// The benchmarks drive the public facade, so the bench smoke doubles as
// an end-to-end exercise of the pipeline API.
func benchOpts(extra ...aid.Option) []aid.Option {
	return append([]aid.Option{aid.WithCorpusSize(30, 30), aid.WithReplays(5)}, extra...)
}

// BenchmarkFigure7 regenerates one Fig. 7 row per sub-benchmark:
// #discriminative predicates, causal-path length, AID and TAGT
// interventions.
func BenchmarkFigure7(b *testing.B) {
	for _, s := range aid.CaseStudies() {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			b.ReportAllocs()
			pipeline := aid.New(benchOpts()...)
			var last *aid.Report
			for i := 0; i < b.N; i++ {
				rep, err := pipeline.Run(context.Background(), aid.FromStudy(s))
				if err != nil {
					b.Fatal(err)
				}
				last = rep
			}
			b.ReportMetric(float64(last.Discriminative), "discrim-preds")
			b.ReportMetric(float64(last.CausalPathLen), "causal-path")
			b.ReportMetric(float64(last.AIDInterventions), "AID-interventions")
			b.ReportMetric(float64(last.TAGTInterventions), "TAGT-interventions")
			b.ReportMetric(float64(last.TAGTWorstCase), "TAGT-bound")
		})
	}
}

// BenchmarkFigure8 regenerates the Fig. 8 sweep: per MAXt setting, the
// average and worst-case interventions for each approach. The paper
// uses 500 instances per setting; the benchmark uses 60 to stay fast —
// cmd/synthbench runs the full scale.
func BenchmarkFigure8(b *testing.B) {
	const instances = 60
	for _, maxT := range aid.Figure8MaxTs() {
		maxT := maxT
		b.Run(fmt.Sprintf("MAXt=%d", maxT), func(b *testing.B) {
			b.ReportAllocs()
			var last *aid.SyntheticSetting
			for i := 0; i < b.N; i++ {
				s, err := aid.RunSyntheticSetting(context.Background(), maxT, instances, 1234)
				if err != nil {
					b.Fatal(err)
				}
				last = s
			}
			b.ReportMetric(last.AvgPreds, "avg-preds")
			for _, ap := range aid.Approaches() {
				c := last.Cells[ap]
				b.ReportMetric(c.Average, string(ap)+"-avg")
				b.ReportMetric(float64(c.WorstCase), string(ap)+"-worst")
			}
		})
	}
}

// BenchmarkPoolScaling compares the pipeline at one pool worker versus
// GOMAXPROCS workers on the same case study — the two runs must agree
// on every metric (the pool's determinism contract), differing only in
// wall-clock.
func BenchmarkPoolScaling(b *testing.B) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			pipeline := aid.New(benchOpts(aid.WithWorkers(workers))...)
			var last *aid.Report
			for i := 0; i < b.N; i++ {
				rep, err := pipeline.Run(context.Background(), aid.FromStudy(aid.CaseStudyByName("kafka")))
				if err != nil {
					b.Fatal(err)
				}
				last = rep
			}
			b.ReportMetric(float64(last.AIDInterventions), "AID-interventions")
			b.ReportMetric(float64(last.TAGTInterventions), "TAGT-interventions")
		})
	}
}

// BenchmarkCorpusScaling exercises the columnar corpus at a trimmed
// scale (CI smoke): rank + AC-DAG build through the columnar store vs
// the row-oriented oracle on an identical synthetic corpus, outputs
// cross-checked inside RunCorpusScaling. cmd/benchjson records the
// full ≥50k×2k measurement in BENCH_pipeline.json.
func BenchmarkCorpusScaling(b *testing.B) {
	b.ReportAllocs()
	var last *aid.CorpusScalingResult
	for i := 0; i < b.N; i++ {
		res, err := aid.RunCorpusScaling(4000, 400, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.Speedup), "rank+build-speedup")
	b.ReportMetric(float64(last.ColumnarNs), "columnar-ns")
	b.ReportMetric(float64(last.RowNs), "row-ns")
	b.ReportMetric(float64(last.FullyDiscriminative), "fully-discriminative")
	if last.Speedup < 5 {
		b.Fatalf("columnar rank+build speedup %.1fx, want >= 5x", last.Speedup)
	}
}

// BenchmarkFigure6 evaluates the Fig. 6 bounds table on the symmetric
// AC-DAG.
func BenchmarkFigure6(b *testing.B) {
	b.ReportAllocs()
	var rows [2]theory.Fig6Row
	for i := 0; i < b.N; i++ {
		rows = theory.Figure6(3, 4, 5, 4, 2, 2)
	}
	b.ReportMetric(rows[0].SearchSpaceLog2, "CPD-space-log2")
	b.ReportMetric(rows[1].SearchSpaceLog2, "GT-space-log2")
	b.ReportMetric(rows[0].LowerBound, "CPD-lower")
	b.ReportMetric(rows[1].LowerBound, "GT-lower")
	b.ReportMetric(rows[0].UpperBound, "CPD-upper")
	b.ReportMetric(rows[1].UpperBound, "GT-upper")
}

// BenchmarkExample3 computes the Example 3 search-space comparison.
func BenchmarkExample3(b *testing.B) {
	b.ReportAllocs()
	var cpd, gt float64
	for i := 0; i < b.N; i++ {
		cpd, _ = new(floatFromBig).fromBig(theory.SymmetricCPDSpace(1, 2, 3))
		gt, _ = new(floatFromBig).fromBig(theory.SymmetricGTSpace(1, 2, 3))
	}
	b.ReportMetric(cpd, "CPD-space")
	b.ReportMetric(gt, "GT-space")
}

// BenchmarkAblation isolates the contribution of each AID component on
// a fixed synthetic population (the design-choice ablation DESIGN.md
// calls out): branch pruning, predicate pruning, topological ordering.
func BenchmarkAblation(b *testing.B) {
	const maxT, instances = 18, 40
	for _, ap := range aid.Approaches() {
		ap := ap
		b.Run(string(ap), func(b *testing.B) {
			b.ReportAllocs()
			var sum, worst int
			for i := 0; i < b.N; i++ {
				sum, worst = 0, 0
				for k := 0; k < instances; k++ {
					inst, err := aid.GenerateSynthetic(aid.SyntheticParams{
						MaxThreads: maxT, Seed: int64(k) * 31, LateSymptoms: -1,
					})
					if err != nil {
						b.Fatal(err)
					}
					n, err := aid.RunSyntheticInstance(context.Background(), inst, ap, int64(k))
					if err != nil {
						b.Fatal(err)
					}
					sum += n
					if n > worst {
						worst = n
					}
				}
			}
			b.ReportMetric(float64(sum)/instances, "avg-interventions")
			b.ReportMetric(float64(worst), "worst-interventions")
		})
	}
}

// floatFromBig is a tiny helper so Example 3's exact big.Int results can
// surface as benchmark metrics.
type floatFromBig struct{}

func (floatFromBig) fromBig(x interface{ Int64() int64 }) (float64, bool) {
	return float64(x.Int64()), true
}
