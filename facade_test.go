package aid_test

import (
	"bytes"
	"context"
	"testing"

	"aid"
	"aid/internal/casestudy"
)

// legacyReport projects a pre-facade casestudy.Report onto the public
// Report shape, field by field.
func legacyReport(rep *casestudy.Report) *aid.Report {
	s1, s2 := rep.AID.PruningStats()
	out := &aid.Report{
		Study:             rep.Study,
		Issue:             rep.Issue,
		Description:       rep.Description,
		TotalPredicates:   rep.TotalPredicates,
		Discriminative:    rep.Discriminative,
		DAGNodes:          rep.DAGNodes,
		NoPathToF:         rep.NoPathToF,
		CausalPathLen:     rep.CausalPathLen,
		AIDInterventions:  rep.AIDInterventions,
		TAGTInterventions: rep.TAGTInterventions,
		TAGTWorstCase:     rep.TAGTWorstCase,
		RootCause:         string(rep.AID.RootCause()),
		Explanation:       rep.Explanation,
		Narrative:         rep.Narrative,
		PruningS1:         s1,
		PruningS2:         s2,
	}
	for _, id := range rep.Path {
		out.Path = append(out.Path, string(id))
	}
	for _, r := range rep.AID.Rounds {
		rr := aid.ReportRound{Phase: r.Phase, Stopped: r.Stopped, Confirmed: string(r.Confirmed)}
		for _, id := range r.Intervened {
			rr.Intervened = append(rr.Intervened, string(id))
		}
		for _, id := range r.Pruned {
			rr.Pruned = append(rr.Pruned, string(id))
		}
		out.Rounds = append(out.Rounds, rr)
	}
	return out
}

// TestPipelineMatchesCaseStudyRun pins the facade to the pre-refactor
// behavior: for every case study, aid.Pipeline.Run produces a report
// byte-identical (as JSON) to the internal casestudy.Run pipeline under
// the same configuration.
func TestPipelineMatchesCaseStudyRun(t *testing.T) {
	ctx := context.Background()
	for _, s := range casestudy.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			rc := casestudy.DefaultRunConfig()
			rc.Successes, rc.Failures = 30, 30
			want, err := casestudy.Run(ctx, s, rc)
			if err != nil {
				t.Fatal(err)
			}

			pipeline := aid.New(aid.WithCorpusSize(30, 30))
			got, err := pipeline.Run(ctx, aid.FromStudy(aid.CaseStudyByName(s.Name)))
			if err != nil {
				t.Fatal(err)
			}

			wantJSON, err := legacyReport(want).JSON()
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := got.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Errorf("facade report differs from casestudy.Run:\n--- casestudy.Run\n%s\n--- Pipeline.Run\n%s", wantJSON, gotJSON)
			}
		})
	}
}

// TestPipelineDeterministicAcrossWorkers checks the facade preserves
// the pool determinism contract: 1 worker and 8 workers produce
// byte-identical reports.
func TestPipelineDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	study := aid.CaseStudyByName("network")
	var reports [][]byte
	for _, workers := range []int{1, 8} {
		pipeline := aid.New(aid.WithCorpusSize(20, 20), aid.WithWorkers(workers))
		rep, err := pipeline.Run(ctx, aid.FromStudy(study))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		j, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, j)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Error("reports differ between 1 and 8 workers")
	}
}

// TestPipelineObserverEventOrder checks the observer sees the typed
// event stream in stage order with consistent counts.
func TestPipelineObserverEventOrder(t *testing.T) {
	var events []aid.Event
	pipeline := aid.New(
		aid.WithCorpusSize(20, 20),
		aid.WithObserver(aid.ObserverFunc(func(e aid.Event) { events = append(events, e) })),
	)
	rep, err := pipeline.Run(context.Background(), aid.FromStudy(aid.CaseStudyByName("npgsql")))
	if err != nil {
		t.Fatal(err)
	}
	var rounds, confirms int
	var sawCollected, sawExtracted, sawRanked, sawDAG, sawDone bool
	for _, e := range events {
		switch ev := e.(type) {
		case aid.CollectProgress:
			if sawCollected {
				t.Error("CollectProgress after TracesCollected")
			}
		case aid.TracesCollected:
			sawCollected = true
			if ev.Successes != 20 || ev.Failures != 20 {
				t.Errorf("TracesCollected = %d/%d, want 20/20", ev.Successes, ev.Failures)
			}
		case aid.PredicatesExtracted:
			sawExtracted = true
			if !sawCollected {
				t.Error("PredicatesExtracted before TracesCollected")
			}
			if ev.Total != rep.TotalPredicates {
				t.Errorf("PredicatesExtracted.Total = %d, want %d", ev.Total, rep.TotalPredicates)
			}
		case aid.Ranked:
			sawRanked = true
			if ev.FullyDiscriminative != rep.Discriminative {
				t.Errorf("Ranked = %d, want %d", ev.FullyDiscriminative, rep.Discriminative)
			}
		case aid.DAGBuilt:
			sawDAG = true
			if ev.Nodes != rep.DAGNodes {
				t.Errorf("DAGBuilt.Nodes = %d, want %d", ev.Nodes, rep.DAGNodes)
			}
		case aid.RoundDone:
			rounds++
			if ev.Index != rounds {
				t.Errorf("RoundDone.Index = %d, want %d", ev.Index, rounds)
			}
			if ev.Batch <= 0 {
				t.Errorf("RoundDone.Index %d: Batch = %d, want a positive scheduler batch id", ev.Index, ev.Batch)
			}
		case aid.CauseConfirmed:
			confirms++
		case aid.DiscoveryDone:
			sawDone = true
			if ev.Interventions != rep.AIDInterventions {
				t.Errorf("DiscoveryDone.Interventions = %d, want %d", ev.Interventions, rep.AIDInterventions)
			}
		}
	}
	if !sawCollected || !sawExtracted || !sawRanked || !sawDAG || !sawDone {
		t.Errorf("missing stage events: collected=%v extracted=%v ranked=%v dag=%v done=%v",
			sawCollected, sawExtracted, sawRanked, sawDAG, sawDone)
	}
	if rounds != rep.AIDInterventions {
		t.Errorf("observed %d RoundDone events, report says %d interventions", rounds, rep.AIDInterventions)
	}
	if confirms != rep.CausalPathLen {
		t.Errorf("observed %d CauseConfirmed events, causal path has %d predicates", confirms, rep.CausalPathLen)
	}
}

// TestPipelineVariants checks the ablation options are accepted and the
// unknown variant is rejected.
func TestPipelineVariants(t *testing.T) {
	ctx := context.Background()
	study := aid.CaseStudyByName("network")
	for _, v := range []aid.Variant{aid.VariantAID, aid.VariantAIDP, aid.VariantAIDPB} {
		pipeline := aid.New(aid.WithCorpusSize(20, 20), aid.WithVariant(v))
		rep, err := pipeline.Run(ctx, aid.FromStudy(study))
		if err != nil {
			t.Fatalf("variant %s: %v", v, err)
		}
		if rep.RootCause == "" {
			t.Errorf("variant %s found no root cause", v)
		}
	}
	pipeline := aid.New(aid.WithCorpusSize(20, 20), aid.WithVariant("nope"))
	if _, err := pipeline.Run(ctx, aid.FromStudy(study)); err == nil {
		t.Error("unknown variant accepted")
	}
}
