package aid

import (
	"encoding/json"
	"fmt"
)

// This file is the Observer event stream's wire format: each Event
// marshals to a one-line JSON envelope {"type": <name>, "event": {…}}
// and unmarshals back to its concrete type. It is the currency of the
// daemon's streaming endpoint (internal/service) and its clients
// (examples/daemon-client): a session's event stream is exactly the
// sequence of MarshalEvent lines its pipeline emitted, and a client
// recovers typed events — including their String renderings — with
// UnmarshalEvent alone, no internal imports.

// Wire names of the Event types, stable across releases.
const (
	EventCollectProgress       = "collect-progress"
	EventTracesCollected       = "traces-collected"
	EventEffectsAnalyzed       = "effects-analyzed"
	EventPredicatesExtracted   = "predicates-extracted"
	EventRanked                = "ranked"
	EventDAGBuilt              = "dag-built"
	EventRoundDone             = "round-done"
	EventContradictionDetected = "contradiction-detected"
	EventSchedulerUsage        = "scheduler-usage"
	EventCauseConfirmed        = "cause-confirmed"
	EventDiscoveryDone         = "discovery-done"
	EventStateRecovered        = "state-recovered"
)

// EventType returns e's stable wire name ("" for an unknown type).
func EventType(e Event) string {
	switch e.(type) {
	case CollectProgress:
		return EventCollectProgress
	case TracesCollected:
		return EventTracesCollected
	case EffectsAnalyzed:
		return EventEffectsAnalyzed
	case PredicatesExtracted:
		return EventPredicatesExtracted
	case Ranked:
		return EventRanked
	case DAGBuilt:
		return EventDAGBuilt
	case RoundDone:
		return EventRoundDone
	case ContradictionDetected:
		return EventContradictionDetected
	case SchedulerUsage:
		return EventSchedulerUsage
	case CauseConfirmed:
		return EventCauseConfirmed
	case DiscoveryDone:
		return EventDiscoveryDone
	case StateRecovered:
		return EventStateRecovered
	}
	return ""
}

// eventEnvelope is the wire envelope. Decoders ignore unknown sibling
// fields, so stream producers may add metadata (sequence numbers,
// timestamps) without breaking UnmarshalEvent.
type eventEnvelope struct {
	Type  string          `json:"type"`
	Event json.RawMessage `json:"event"`
}

// MarshalEvent serializes an event as its one-line JSON envelope.
func MarshalEvent(e Event) ([]byte, error) {
	name := EventType(e)
	if name == "" {
		return nil, fmt.Errorf("aid: cannot marshal unknown event type %T", e)
	}
	body, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("aid: marshal %s event: %w", name, err)
	}
	return json.Marshal(eventEnvelope{Type: name, Event: body})
}

// UnmarshalEvent decodes one envelope line back to its concrete Event.
func UnmarshalEvent(data []byte) (Event, error) {
	var env eventEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("aid: malformed event envelope: %w", err)
	}
	var e Event
	switch env.Type {
	case EventCollectProgress:
		e = &CollectProgress{}
	case EventTracesCollected:
		e = &TracesCollected{}
	case EventEffectsAnalyzed:
		e = &EffectsAnalyzed{}
	case EventPredicatesExtracted:
		e = &PredicatesExtracted{}
	case EventRanked:
		e = &Ranked{}
	case EventDAGBuilt:
		e = &DAGBuilt{}
	case EventRoundDone:
		e = &RoundDone{}
	case EventContradictionDetected:
		e = &ContradictionDetected{}
	case EventSchedulerUsage:
		e = &SchedulerUsage{}
	case EventCauseConfirmed:
		e = &CauseConfirmed{}
	case EventDiscoveryDone:
		e = &DiscoveryDone{}
	case EventStateRecovered:
		e = &StateRecovered{}
	default:
		return nil, fmt.Errorf("aid: unknown event type %q", env.Type)
	}
	if err := json.Unmarshal(env.Event, e); err != nil {
		return nil, fmt.Errorf("aid: malformed %s event: %w", env.Type, err)
	}
	// Events travel by value everywhere else in the API; return the
	// concrete value, not the pointer used for decoding.
	switch v := e.(type) {
	case *CollectProgress:
		return *v, nil
	case *TracesCollected:
		return *v, nil
	case *EffectsAnalyzed:
		return *v, nil
	case *PredicatesExtracted:
		return *v, nil
	case *Ranked:
		return *v, nil
	case *DAGBuilt:
		return *v, nil
	case *RoundDone:
		return *v, nil
	case *ContradictionDetected:
		return *v, nil
	case *SchedulerUsage:
		return *v, nil
	case *CauseConfirmed:
		return *v, nil
	case *DiscoveryDone:
		return *v, nil
	case *StateRecovered:
		return *v, nil
	}
	return nil, fmt.Errorf("aid: unknown event type %q", env.Type)
}
