package aid

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"aid/internal/acdag"
	"aid/internal/core"
	"aid/internal/effects"
	"aid/internal/explain"
	"aid/internal/grouptest"
	"aid/internal/inject"
	"aid/internal/predicate"
	"aid/internal/statdebug"
	"aid/internal/trace"
)

// Variant selects the AID ablation an intervention phase runs.
type Variant string

// The paper's algorithm variants (§7).
const (
	// VariantAID is the full algorithm: branch and predicate pruning.
	VariantAID Variant = "aid"
	// VariantAIDP disables predicate pruning (the paper's AID-P).
	VariantAIDP Variant = "aid-p"
	// VariantAIDPB disables predicate and branch pruning (AID-P-B).
	VariantAIDPB Variant = "aid-p-b"
)

// Pipeline is the public face of AID: collect → extract → rank →
// AC-DAG → intervene → explain, configured once with functional
// options. Stages are individually callable for partial workflows
// (inspect the SD ranking, dump the AC-DAG, analyze an offline corpus)
// and composable end-to-end via Run. A Pipeline is immutable after New
// and safe to reuse across sources; every stage honors its context and
// aborts promptly when cancelled.
type Pipeline struct {
	successes int
	failures  int
	seedCap   int
	replays   int
	seed      int64
	compounds int
	variant   Variant
	workers   int
	observer  Observer
	streaming bool
	effects   bool
	noise     *NoiseTolerance
	shared    *SharedScheduler
}

// NoiseTolerance configures the robustness layer: an adaptive trial
// oracle that repeats each intervention round until its verdict reaches
// a confidence bound, a scheduler that detects and repairs
// contradictory verdicts, and fault containment (panic recovery,
// transient-error retry, replay quarantine) below it. The zero value
// uses the defaults documented on each field.
type NoiseTolerance struct {
	// MaxTrials caps the repeated trials of one intervention round
	// (default 12).
	MaxTrials int
	// Confidence is the verdict posterior at which a round's sequential
	// test stops early (default 0.99).
	Confidence float64
	// ManifestFloor is the assumed minimum per-trial probability that a
	// truly persisting failure manifests as a failing run (default 0.5).
	// Lower floors demand more failure-free trials before "stopped" is
	// accepted.
	ManifestFloor float64
	// FlipCeiling is the assumed maximum per-trial probability that a
	// run's failure verdict is forged (a monitoring glitch). Zero keeps
	// the paper's single-counter-example rule: one failing run decides
	// "persisted" on its own.
	FlipCeiling float64
	// RetryLimit bounds retries of one trial after transient intervener
	// errors or recovered panics (default 3).
	RetryLimit int
	// BackoffBase and BackoffMax shape the seeded-jitter exponential
	// backoff between retries (defaults 2ms and 100ms).
	BackoffBase, BackoffMax time.Duration
	// WallBudget bounds each replay's real elapsed time; a replay
	// exceeding it is contained and quarantined rather than hanging the
	// round (0 = unbounded).
	WallBudget time.Duration
}

// WithNoiseTolerance turns on noise-tolerant discovery. The
// deterministic simulator never needs it; it exists for flaky or
// fault-prone interveners (external runners, chaos testing) where a
// single run's verdict cannot be trusted. The pipeline then wraps the
// executor in the adaptive trial oracle, runs the scheduler in robust
// mode (guarded memoization plus contradiction repair), and attaches a
// RobustnessReport to the Report.
func WithNoiseTolerance(nt NoiseTolerance) Option {
	return func(p *Pipeline) { p.noise = &nt }
}

// SharedScheduler is a cross-run intervention memo: runs that attach
// the same SharedScheduler (WithSharedScheduler) reuse each other's
// intervention outcomes, so repeated debugging of the same program
// skips replay bundles already executed. It is the facade's face of the
// core scheduler-sharing contract (previously only the ablation
// variants inside one process used it) and the first step of
// cross-session scheduler reuse: the daemon keys SharedSchedulers by
// tenant and session fingerprint and threads one through every session
// debugging the same target.
//
// Sharing is sound only between runs whose interventions are
// outcome-equivalent — same program, trace corpus, replay seeds, and
// extraction config. The caller owns that keying; the scheduler cannot
// detect a mismatch. Runs sharing a SharedScheduler serialize their
// discovery phases (collection and extraction still overlap): the
// scheduler has a single decision thread by contract, and the memo
// makes the serialized replays cheap. Reports stay byte-identical with
// or without sharing — only RoundMeta provenance (cache hits) differs.
type SharedScheduler struct {
	// sem serializes discovery phases across runs; acquire is
	// ctx-aware so a cancelled run never blocks on a sibling's rounds.
	sem chan struct{}

	mu    sync.Mutex
	sched *core.Scheduler
	// pending stages memo entries imported before the first run binds an
	// intervener (restoring persisted state happens at daemon startup,
	// when no executor exists yet); bind applies them to the fresh
	// scheduler.
	pending []core.MemoEntry
}

// NewSharedScheduler returns an empty cross-run memo.
func NewSharedScheduler() *SharedScheduler {
	return &SharedScheduler{sem: make(chan struct{}, 1)}
}

// acquire claims the single discovery slot, honoring ctx while waiting.
func (s *SharedScheduler) acquire(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// bind attaches the run's executor, building the scheduler on first
// use and rebinding it afterwards. The caller holds the discovery slot.
func (s *SharedScheduler) bind(iv core.Intervener, workers int) *core.Scheduler {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sched == nil {
		s.sched = core.NewScheduler(iv, core.SchedulerConfig{Workers: workers})
		if len(s.pending) > 0 {
			s.sched.ImportMemo(s.pending)
			s.pending = nil
		}
	} else {
		s.sched.Rebind(iv)
	}
	return s.sched
}

// ExportMemo serializes the accumulated intervention memo as a JSON
// snapshot suitable for ImportMemo in a later process. Nil bytes (with
// nil error) mean there is nothing worth persisting. Safe to call at
// any time — including mid-run, where it snapshots whatever outcomes
// have completed — because the underlying cache is lock-guarded; the
// daemon calls it after each session and again at graceful shutdown.
func (s *SharedScheduler) ExportMemo() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var entries []core.MemoEntry
	if s.sched != nil {
		entries = s.sched.ExportMemo()
	} else {
		// Imported but never bound: re-export the staged entries so a
		// compaction cannot drop state that was merely unused.
		entries = s.pending
	}
	if len(entries) == 0 {
		return nil, nil
	}
	data, err := json.Marshal(entries)
	if err != nil {
		return nil, fmt.Errorf("aid: export memo: %w", err)
	}
	return data, nil
}

// ImportMemo restores a snapshot produced by ExportMemo, returning how
// many entries it carried. Before the first run it stages the entries
// and applies them when the scheduler is first bound; afterwards the
// entries merge into the live cache, existing keys winning. The sharing
// contract extends across the round trip: import only snapshots
// exported for the same (program, corpus, seeds, config) tuple —
// the daemon guarantees it by persisting memos under the session
// fingerprint and corpus fingerprint they were derived over.
func (s *SharedScheduler) ImportMemo(data []byte) (int, error) {
	var entries []core.MemoEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return 0, fmt.Errorf("aid: import memo: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sched != nil {
		return s.sched.ImportMemo(entries), nil
	}
	s.pending = append(s.pending, entries...)
	return len(entries), nil
}

// Stats snapshots the accumulated scheduler accounting (zero before the
// first run). The daemon's session status endpoint reports the
// per-session delta of CacheHits/Requests from here.
func (s *SharedScheduler) Stats() SchedulerStats {
	s.mu.Lock()
	sched := s.sched
	s.mu.Unlock()
	if sched == nil {
		return SchedulerStats{}
	}
	return sched.Stats()
}

// WithSharedScheduler attaches a cross-run intervention memo; see
// SharedScheduler for the sharing contract. Noise-tolerant runs ignore
// it: their robust scheduler carries per-run verdict state that must
// not leak across sessions.
func WithSharedScheduler(s *SharedScheduler) Option {
	return func(p *Pipeline) { p.shared = s }
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithCorpusSize sets the target numbers of successful and failed
// executions to collect (the paper uses 50/50, the default).
func WithCorpusSize(successes, failures int) Option {
	return func(p *Pipeline) { p.successes, p.failures = successes, failures }
}

// WithSeedCap bounds how many scheduler seeds collection sweeps
// (default 4000).
func WithSeedCap(n int) Option {
	return func(p *Pipeline) { p.seedCap = n }
}

// WithReplays sets how many failing seeds each intervention round
// re-executes (default 5; §5.3 footnote: several runs per round guard
// against nondeterminism).
func WithReplays(n int) Option {
	return func(p *Pipeline) { p.replays = n }
}

// WithSeed sets the algorithm seed driving tie-breaking (default 1).
func WithSeed(seed int64) Option {
	return func(p *Pipeline) { p.seed = seed }
}

// WithCompounds lets statistical debugging materialize up to n
// conjunction predicates (default 0; §3.2's modeling of
// nondeterministic root causes).
func WithCompounds(n int) Option {
	return func(p *Pipeline) { p.compounds = n }
}

// WithVariant selects the AID ablation (default VariantAID).
func WithVariant(v Variant) Option {
	return func(p *Pipeline) { p.variant = v }
}

// WithWorkers sets the execution-pool width for collection and replay;
// <= 0 means GOMAXPROCS. Reports are bit-identical for any width.
func WithWorkers(n int) Option {
	return func(p *Pipeline) { p.workers = n }
}

// WithObserver streams typed progress events (collection totals,
// extraction counts, per-round intervention outcomes) to o.
func WithObserver(o Observer) Option {
	return func(p *Pipeline) { p.observer = o }
}

// WithEffectAnalysis turns on the static effect-analysis front-end
// (internal/effects) for sources that provide a program. Before
// extraction the pipeline analyzes every function's transitive side
// effects and uses the result two ways: the derived SideEffectFree
// classification widens the hand annotations (so return-value and
// exception interventions become available on provably-safe methods,
// including when no hand annotations exist), and predicates anchored
// entirely in provably-pure functions are pruned before ranking —
// they cannot host a root cause — shrinking the corpus, the AC-DAG,
// and the intervention candidate pools. An EffectsAnalyzed event
// reports the classification and pruning counts, including any hand
// annotations the analysis contradicts.
//
// Off by default: the pipeline then uses hand annotations alone and
// produces byte-identical output to previous releases. Sources
// without a program (offline corpora) are unaffected either way.
func WithEffectAnalysis(on bool) Option {
	return func(p *Pipeline) { p.effects = on }
}

// WithStreamingExtract makes Extract ingest the corpus one execution
// row at a time, firing incremental Ranked events as the maintained
// scores evolve (rank-as-you-ingest). Analysis results are identical
// to the batch path; see Pipeline.ExtractStream.
func WithStreamingExtract(on bool) Option {
	return func(p *Pipeline) { p.streaming = on }
}

// New builds a Pipeline with the paper's defaults: a 50+50 corpus
// within 4000 seeds, 5 replays per round, seed 1, the full AID variant.
func New(opts ...Option) *Pipeline {
	p := &Pipeline{
		successes: 50,
		failures:  50,
		seedCap:   4000,
		replays:   5,
		seed:      1,
		variant:   VariantAID,
	}
	for _, opt := range opts {
		opt(p)
	}
	return p
}

func (p *Pipeline) emit(e Event) {
	if p.observer != nil {
		p.observer.OnEvent(e)
	}
}

// coreOptions resolves the variant into core options with observer
// hooks attached.
func (p *Pipeline) coreOptions() (core.Options, error) {
	var opts core.Options
	switch p.variant {
	case "", VariantAID:
		opts = core.AIDOptions(p.seed)
	case VariantAIDP:
		opts = core.AIDPOptions(p.seed)
	case VariantAIDPB:
		opts = core.AIDPBOptions(p.seed)
	default:
		return core.Options{}, fmt.Errorf("aid: unknown variant %q", p.variant)
	}
	if p.observer != nil {
		rounds := 0
		opts.OnRound = func(r core.Round, m core.RoundMeta) {
			rounds++
			// Detach the round's slices from discovery's own log entry
			// once at emission: branch pruning keeps appending to that
			// entry's Pruned backing after the round fires, and a
			// subscriber that appends to a retained event would
			// otherwise race it for the same backing array. One clone is
			// then shared immutably across every subscriber of an
			// Observers fan-out.
			r.Intervened = append([]predicate.ID(nil), r.Intervened...)
			r.Pruned = append([]predicate.ID(nil), r.Pruned...)
			p.emit(RoundDone{
				Index:         rounds,
				Round:         r,
				Batch:         m.Batch,
				CacheHit:      m.CacheHit,
				Speculative:   m.Speculative,
				Trials:        m.Trials,
				Retries:       m.Retries,
				Confidence:    m.Confidence,
				Contradiction: m.Contradiction,
			})
		}
		opts.OnConfirm = func(id predicate.ID) {
			p.emit(CauseConfirmed{ID: id})
		}
	}
	// WithWorkers feeds the intervention scheduler as well as the
	// collection and replay pools: replay bundles batch across the same
	// width, and a single-worker pipeline disables speculative prefetch.
	opts.Workers = p.workers
	return opts, nil
}

// Collect runs the source's collection under the pipeline's quotas.
func (p *Pipeline) Collect(ctx context.Context, src TraceSource) (*Traces, error) {
	tr, err := src.Collect(ctx, CollectSpec{
		Successes: p.successes,
		Failures:  p.failures,
		SeedCap:   p.seedCap,
		Workers:   p.workers,
		Observer:  p.observer,
	})
	if err != nil {
		return nil, err
	}
	succ, fail := tr.Set.Counts()
	p.emit(TracesCollected{Source: src.Label(), Successes: succ, Failures: fail})
	return tr, nil
}

// Extract evaluates the predicate vocabulary over the corpus,
// materializing compound predicates when configured. With
// WithStreamingExtract it delegates to ExtractStream.
func (p *Pipeline) Extract(tr *Traces) *Corpus {
	if p.streaming {
		return p.ExtractStream(tr)
	}
	an := p.applyEffects(tr)
	corpus := predicate.Extract(tr.Set, tr.Config)
	if p.compounds > 0 {
		statdebug.GenerateCompounds(corpus, p.compounds)
	}
	p.emitEffects(an, corpus)
	p.emit(PredicatesExtracted{Total: len(corpus.Preds)})
	return corpus
}

// applyEffects runs the static effect analysis (WithEffectAnalysis)
// and folds its result into tr.Config: the safety oracle becomes
// hand-annotation OR derived-side-effect-free (derived alone when no
// hand oracle is set), and the pruning oracle is installed. The config
// is mutated on tr deliberately — the intervention phase's replay
// extraction reads the same Traces, and extraction and replay must
// agree on the predicate vocabulary. Returns nil when the analysis is
// off or the source has no program.
func (p *Pipeline) applyEffects(tr *Traces) *effects.Analysis {
	if !p.effects || tr.Program == nil {
		return nil
	}
	an := effects.Analyze(tr.Program)
	hand := tr.Config.SideEffectFree
	tr.Config.SideEffectFree = func(method string) bool {
		return (hand != nil && hand(method)) || an.SideEffectFree(method)
	}
	tr.Config.PureMethods = an.Prunable
	return an
}

// emitEffects reports the effect-analysis stage (no-op for a nil
// analysis).
func (p *Pipeline) emitEffects(an *effects.Analysis, corpus *Corpus) {
	if an == nil {
		return
	}
	ev := EffectsAnalyzed{
		Functions:    len(an.Funcs),
		Pruned:       corpus.EffectPruned(),
		Contradicted: len(an.Contradictions()),
	}
	for fn := range an.Funcs {
		if an.SideEffectFree(fn) {
			ev.SideEffectFree++
		}
		if an.Prunable(fn) {
			ev.Prunable++
		}
	}
	p.emit(ev)
}

// ExtractStream is Extract's rank-as-you-ingest path: execution rows
// stream into the columnar corpus one at a time, and incremental Ranked
// events report the live fully-discriminative count as the maintained
// scores evolve (about twenty progress events per corpus). The
// resulting corpus yields the same scores, candidate sets, and AC-DAG
// as the batch path — only the predicate registration order differs
// (first occurrence instead of phase order), which no analysis output
// observes.
func (p *Pipeline) ExtractStream(tr *Traces) *Corpus {
	an := p.applyEffects(tr)
	total := len(tr.Set.Executions)
	every := total / 20
	if every < 1 {
		every = 1
	}
	corpus := predicate.ExtractStream(tr.Set, tr.Config, func(row int, c *Corpus) {
		if p.observer == nil {
			return
		}
		if (row+1)%every == 0 || row == total-1 {
			p.emit(Ranked{
				FullyDiscriminative: statdebug.CountFully(c),
				RowsIngested:        row + 1,
				RowsTotal:           total,
			})
		}
	})
	if p.compounds > 0 {
		statdebug.GenerateCompounds(corpus, p.compounds)
	}
	p.emitEffects(an, corpus)
	p.emit(PredicatesExtracted{Total: len(corpus.Preds)})
	return corpus
}

// Ranking is the statistical-debugging stage's output: the
// fully-discriminative predicates plus the full SD score table.
type Ranking struct {
	corpus *Corpus
	// Fully lists the fully-discriminative predicates (precision and
	// recall 1.0) — the AC-DAG candidates.
	Fully []PredicateID
}

// Format renders the SD ranking as a table, what a statistical
// debugger would hand the developer (topN = 0 prints everything).
func (r *Ranking) Format(topN int) string {
	return statdebug.FormatScores(r.corpus, topN)
}

// Rank runs statistical debugging over the corpus.
func (p *Pipeline) Rank(corpus *Corpus) *Ranking {
	fully := statdebug.FullyDiscriminative(corpus)
	p.emit(Ranked{FullyDiscriminative: len(fully)})
	return &Ranking{corpus: corpus, Fully: fully}
}

// BuildDAG constructs the AC-DAG over the candidate predicates plus F.
func (p *Pipeline) BuildDAG(corpus *Corpus, candidates []PredicateID) (*DAG, *DAGReport, error) {
	dag, report, err := acdag.Build(corpus, candidates, acdag.BuildOptions{})
	if err != nil {
		return nil, nil, err
	}
	p.emit(DAGBuilt{Nodes: dag.Len(), Unsafe: len(report.Unsafe)})
	return dag, report, nil
}

// executor builds the simulator-backed intervener for the traces.
func (p *Pipeline) executor(tr *Traces, corpus *Corpus) (*inject.Executor, error) {
	if tr.Program == nil {
		return nil, fmt.Errorf("aid: source %q provides no program; interventions are unavailable on an offline corpus (attach one, e.g. TraceFileSource.ForStudy)", tr.Source)
	}
	replay := tr.FailSeeds
	if p.replays > 0 && len(replay) > p.replays {
		replay = replay[:p.replays]
	}
	return &inject.Executor{
		Prog:       tr.Program,
		Corpus:     corpus,
		Baselines:  baselineSuccesses(tr.Set),
		Seeds:      replay,
		Cfg:        tr.Config,
		FailureSig: tr.FailureSig,
		MaxSteps:   tr.MaxSteps,
		Workers:    p.workers,
	}, nil
}

// discover is the shared body of Discover and Run: it builds the
// executor, runs core discovery, and emits DiscoveryDone. The executor
// is returned so Run can reuse it (and its cached extractor state) as
// the TAGT oracle; the RobustnessReport is nil outside noise-tolerant
// mode.
func (p *Pipeline) discover(ctx context.Context, tr *Traces, corpus *Corpus, dag *DAG) (*Result, *inject.Executor, *RobustnessReport, error) {
	exec, err := p.executor(tr, corpus)
	if err != nil {
		return nil, nil, nil, err
	}
	opts, err := p.coreOptions()
	if err != nil {
		return nil, nil, nil, err
	}

	var iv core.Intervener = exec
	var robust *core.RobustIntervener
	var sched *core.Scheduler
	minConf := 0.0
	var sharedSched *core.Scheduler
	var sharedPre SchedulerStats
	if p.noise == nil && p.shared != nil {
		// Cross-run memo sharing: claim the shared scheduler's single
		// discovery slot (ctx-aware, so cancellation never blocks on a
		// sibling run's rounds), rebind it to this run's executor, and
		// route all interventions through the carried-over cache.
		release, err := p.shared.acquire(ctx)
		if err != nil {
			return nil, nil, nil, err
		}
		defer release()
		sharedSched = p.shared.bind(exec, p.workers)
		// Snapshot the memo accounting while holding the slot: sibling
		// runs are excluded, so the SchedulerUsage delta emitted below is
		// exactly this run's.
		sharedPre = sharedSched.Stats()
		opts.Scheduler = sharedSched
	}
	if p.noise != nil {
		exec.WallBudget = p.noise.WallBudget
		robust = core.NewRobustIntervener(exec, core.RobustConfig{
			MaxTrials:     p.noise.MaxTrials,
			Confidence:    p.noise.Confidence,
			ManifestFloor: p.noise.ManifestFloor,
			FlipCeiling:   p.noise.FlipCeiling,
			RetryLimit:    p.noise.RetryLimit,
			BackoffBase:   p.noise.BackoffBase,
			BackoffMax:    p.noise.BackoffMax,
			Seed:          p.seed,
		})
		sched = core.NewScheduler(robust, core.SchedulerConfig{
			Workers: p.workers,
			Robust:  true,
			OnContradiction: func(ev core.ContradictionEvent) {
				p.emit(ContradictionDetected{
					Stopped:   ev.Stopped,
					Persisted: ev.Persisted,
					Resolved:  ev.Resolved,
				})
			},
		})
		opts.Scheduler = sched
		iv = robust
		// The causal path is only as certain as its least-certain round:
		// track the weakest verdict posterior for the report.
		prev := opts.OnRound
		opts.OnRound = func(r core.Round, m core.RoundMeta) {
			if m.Trials > 0 && m.Confidence > 0 && (minConf == 0 || m.Confidence < minConf) {
				minConf = m.Confidence
			}
			if prev != nil {
				prev(r, m)
			}
		}
	}

	res, err := core.Discover(ctx, dag, iv, opts)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("aid: %s: %w", tr.Source, err)
	}
	var robustness *RobustnessReport
	if p.noise != nil {
		rs := robust.Stats()
		ss := sched.Stats()
		robustness = &RobustnessReport{
			Trials:          rs.Trials,
			Retries:         rs.Retries,
			RecoveredPanics: rs.Recovered,
			SuspectRuns:     rs.Suspect,
			UndecidedRounds: rs.Undecided,
			Contradictions:  ss.Contradictions,
			Repaired:        ss.Repaired,
			Escalated:       ss.Escalated,
			MissedRuns:      exec.Missed,
			CauseConfidence: minConf,
		}
		for _, q := range exec.Quarantined() {
			rq := ReportQuarantine{Seed: q.Seed, Error: q.Err.Error()}
			for _, id := range q.Group {
				rq.Group = append(rq.Group, string(id))
			}
			robustness.Quarantined = append(robustness.Quarantined, rq)
		}
	}
	if sharedSched != nil {
		// Still inside the discovery slot (released when this function
		// returns), so the delta cannot fold in a sibling run's rounds.
		post := sharedSched.Stats()
		p.emit(SchedulerUsage{
			Requests:   post.Requests - sharedPre.Requests,
			CacheHits:  post.CacheHits - sharedPre.CacheHits,
			Executions: post.Executions - sharedPre.Executions,
		})
	}
	p.emit(DiscoveryDone{
		RootCause:     res.RootCause(),
		PathLen:       len(res.Path) - 1,
		Interventions: res.Interventions(),
	})
	return res, exec, robustness, nil
}

// Discover runs the causality-guided intervention phase (Algorithms
// 1–3) against the AC-DAG, re-executing the source's program under
// fault-injection plans. Cancelling ctx aborts before the next round
// (and mid-round, within one replay task-drain) with ctx's error.
func (p *Pipeline) Discover(ctx context.Context, tr *Traces, corpus *Corpus, dag *DAG) (*Result, error) {
	res, _, _, err := p.discover(ctx, tr, corpus, dag)
	return res, err
}

// Explain renders the discovery result as the paper's §7.1-style
// narrative.
func (p *Pipeline) Explain(corpus *Corpus, res *Result) string {
	return explain.Build(corpus, res).String()
}

// Run executes the pipeline end-to-end: collect, extract, rank, build
// the AC-DAG, discover the causal path, run the TAGT baseline on the
// same candidate pool, and assemble the serializable Report. The
// output is bit-identical for any worker count, and — for the built-in
// case studies — to the pre-facade internal runner.
func (p *Pipeline) Run(ctx context.Context, src TraceSource) (*Report, error) {
	tr, err := p.Collect(ctx, src)
	if err != nil {
		return nil, err
	}
	corpus := p.Extract(tr)
	ranking := p.Rank(corpus)
	dag, _, err := p.BuildDAG(corpus, ranking.Fully)
	if err != nil {
		return nil, err
	}

	aidRes, exec, robustness, err := p.discover(ctx, tr, corpus, dag)
	if err != nil {
		return nil, err
	}

	// TAGT runs on the same safely-intervenable candidate pool with the
	// same intervention oracle, but no DAG knowledge.
	var pool []PredicateID
	noPath := 0
	for _, id := range dag.Nodes() {
		if id == FailureID {
			continue
		}
		pool = append(pool, id)
		if !dag.Precedes(id, FailureID) {
			noPath++
		}
	}
	oracle := func(group []predicate.ID) (bool, error) {
		obs, err := exec.Intervene(ctx, group)
		if err != nil {
			return false, err
		}
		for _, o := range obs {
			if o.Failed {
				return false, nil
			}
		}
		return true, nil
	}
	tagtRes, err := grouptest.Adaptive(pool, oracle, p.seed)
	if err != nil {
		return nil, fmt.Errorf("aid: %s: TAGT: %w", src.Label(), err)
	}

	pathLen := len(aidRes.Path) - 1 // excluding F
	s1, s2 := aidRes.PruningStats()
	// The report assembles in pooled arena storage; Detach below is the
	// one copy out, so the returned report owns its memory and the
	// slabs go back to the pool for the next run.
	ra := reportArenas.Get().(*reportArena)
	report := &Report{
		Study:             tr.Source,
		Issue:             tr.Issue,
		Description:       tr.Description,
		TotalPredicates:   len(corpus.Preds),
		Discriminative:    len(ranking.Fully),
		DAGNodes:          dag.Len(),
		NoPathToF:         noPath,
		CausalPathLen:     pathLen,
		AIDInterventions:  aidRes.Interventions(),
		TAGTInterventions: tagtRes.Tests,
		TAGTWorstCase:     grouptest.UpperBound(len(pool), pathLen),
		RootCause:         string(aidRes.RootCause()),
		PruningS1:         s1,
		PruningS2:         s2,
		Robustness:        robustness,
		Result:            aidRes,
	}
	report.Path = ra.ids(aidRes.Path)
	report.Explanation = ra.strings(len(aidRes.Path))
	for i, id := range aidRes.Path {
		desc := string(id)
		if pr := corpus.Pred(id); pr != nil {
			desc = pr.String()
		}
		report.Explanation[i] = fmt.Sprintf("(%d) %s", i+1, desc)
	}
	report.Narrative = explain.Build(corpus, aidRes).String()
	report.Rounds = ra.reportRounds(aidRes.Rounds)
	return ra.detach(report), nil
}

func baselineSuccesses(set *trace.Set) []trace.Execution {
	var out []trace.Execution
	for i := range set.Executions {
		if !set.Executions[i].Failed() {
			out = append(out, set.Executions[i])
		}
	}
	return out
}
