package aid_test

import (
	"reflect"
	"strings"
	"testing"

	"aid"
)

// TestEventWireRoundTrip round-trips every event type through the JSON
// envelope codec: the decoded value must be the same concrete type with
// the same fields — and therefore the same String rendering — so a
// daemon client sees exactly what an embedded observer would.
func TestEventWireRoundTrip(t *testing.T) {
	events := []aid.Event{
		aid.CollectProgress{Successes: 3, Failures: 2, SeedsSwept: 4096},
		aid.TracesCollected{Source: "npgsql", Successes: 50, Failures: 50},
		aid.EffectsAnalyzed{Functions: 13, SideEffectFree: 10, Prunable: 8, Pruned: 6, Contradicted: 1},
		aid.PredicatesExtracted{Total: 123},
		aid.Ranked{FullyDiscriminative: 7, RowsIngested: 40, RowsTotal: 100},
		aid.DAGBuilt{Nodes: 9, Unsafe: 2},
		aid.RoundDone{Index: 4, Round: aid.Round{Phase: "branch", Intervened: []aid.PredicateID{"p1", "p2"}, Stopped: true, Confirmed: "p1"}, Batch: 2, CacheHit: true, Trials: 6, Confidence: 0.97},
		aid.ContradictionDetected{Stopped: []aid.PredicateID{"a"}, Persisted: []aid.PredicateID{"a", "b"}, Resolved: true},
		aid.SchedulerUsage{Requests: 12, CacheHits: 5, Executions: 7},
		aid.CauseConfirmed{ID: "p1"},
		aid.DiscoveryDone{RootCause: "p1", PathLen: 3, Interventions: 11},
		aid.StateRecovered{Corpora: 2, Memos: 3, MemoEntries: 17, RecordsKept: 5, RecordsDropped: 1, Invalidated: 1},
	}
	for _, want := range events {
		line, err := aid.MarshalEvent(want)
		if err != nil {
			t.Fatalf("MarshalEvent(%T): %v", want, err)
		}
		if strings.ContainsRune(string(line), '\n') {
			t.Errorf("MarshalEvent(%T) is not a single line: %q", want, line)
		}
		got, err := aid.UnmarshalEvent(line)
		if err != nil {
			t.Fatalf("UnmarshalEvent(%T): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %T:\n got %#v\nwant %#v", want, got, want)
		}
		if got.String() != want.String() {
			t.Errorf("round trip %T changed String: %q != %q", want, got.String(), want.String())
		}
		if aid.EventType(want) == "" {
			t.Errorf("EventType(%T) is empty", want)
		}
	}
}

// TestEventWireErrors covers the codec's failure modes.
func TestEventWireErrors(t *testing.T) {
	if _, err := aid.UnmarshalEvent([]byte(`{"type":"nope","event":{}}`)); err == nil {
		t.Error("unknown type should fail")
	}
	if _, err := aid.UnmarshalEvent([]byte(`not json`)); err == nil {
		t.Error("malformed envelope should fail")
	}
	if _, err := aid.UnmarshalEvent([]byte(`{"type":"ranked","event":[1,2]}`)); err == nil {
		t.Error("malformed body should fail")
	}
}

// TestEventWireForwardCompat: decoders ignore unknown envelope fields so
// producers may add stream metadata.
func TestEventWireForwardCompat(t *testing.T) {
	got, err := aid.UnmarshalEvent([]byte(`{"type":"cause-confirmed","seq":9,"event":{"ID":"px"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cc, ok := got.(aid.CauseConfirmed); !ok || cc.ID != "px" {
		t.Errorf("got %#v", got)
	}
}
